package emu

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"ibox/internal/iboxnet"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// sink is a UDP listener recording arrival times per payload.
type sink struct {
	conn *net.UDPConn
	mu   sync.Mutex
	got  []arrival
}

type arrival struct {
	at   time.Time
	size int
	tag  byte
}

func newSink(t *testing.T) *sink {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	s := &sink{conn: conn}
	go func() {
		buf := make([]byte, 65536)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			s.mu.Lock()
			tag := byte(0)
			if n > 0 {
				tag = buf[0]
			}
			s.got = append(s.got, arrival{time.Now(), n, tag})
			s.mu.Unlock()
		}
	}()
	t.Cleanup(func() { conn.Close() })
	return s
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got)
}

func (s *sink) arrivals() []arrival {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]arrival(nil), s.got...)
}

func testParams() iboxnet.Params {
	return iboxnet.Params{
		Bandwidth:   1_250_000, // 10 Mbps
		PropDelay:   30 * sim.Millisecond,
		BufferBytes: 62_500, // 50 ms of buffering
	}
}

// startEmu launches an emulator toward the sink and returns it plus a stop
// function.
func startEmu(t *testing.T, cfg Config, dst *net.UDPAddr) (*Emulator, func()) {
	t.Helper()
	cfg.Listen = "127.0.0.1:0"
	cfg.Forward = dst.String()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := e.Run(ctx); err != nil {
			t.Errorf("emulator: %v", err)
		}
	}()
	return e, func() {
		cancel()
		<-done
	}
}

func dialTo(t *testing.T, addr *net.UDPAddr) *net.UDPConn {
	t.Helper()
	c, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func waitFor(t *testing.T, cond func() bool, within time.Duration) bool {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

func TestEmulatorDeliversWithPropagationDelay(t *testing.T) {
	s := newSink(t)
	e, stop := startEmu(t, Config{Params: testParams()}, s.conn.LocalAddr().(*net.UDPAddr))
	defer stop()
	src := dialTo(t, e.Addr())

	sent := time.Now()
	if _, err := src.Write(make([]byte, 1200)); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, func() bool { return s.count() == 1 }, 2*time.Second) {
		t.Fatalf("packet not delivered; stats %+v", e.Stats())
	}
	d := s.arrivals()[0].at.Sub(sent)
	// Propagation 30 ms + ~1 ms serialization; allow generous OS jitter.
	if d < 25*time.Millisecond || d > 300*time.Millisecond {
		t.Errorf("one-way delay %v, want ≈31 ms", d)
	}
	if got := e.Stats(); got.Delivered != 1 || got.Received != 1 {
		t.Errorf("stats %+v", got)
	}
}

func TestEmulatorQueuesAndPreservesOrder(t *testing.T) {
	s := newSink(t)
	e, stop := startEmu(t, Config{Params: testParams()}, s.conn.LocalAddr().(*net.UDPAddr))
	defer stop()
	src := dialTo(t, e.Addr())

	// Burst of 40 × 1250 B = 50 kB: fits the 62.5 kB buffer, drains at
	// 10 Mbps over ~40 ms. Tag packets to verify FIFO.
	const n = 40
	for i := 0; i < n; i++ {
		pkt := make([]byte, 1250)
		pkt[0] = byte(i)
		if _, err := src.Write(pkt); err != nil {
			t.Fatal(err)
		}
	}
	if !waitFor(t, func() bool { return s.count() == n }, 3*time.Second) {
		t.Fatalf("delivered %d of %d; stats %+v", s.count(), n, e.Stats())
	}
	arr := s.arrivals()
	for i := 1; i < n; i++ {
		if arr[i].tag != byte(i) {
			t.Fatalf("reordered: position %d has tag %d", i, arr[i].tag)
		}
	}
	// The last packet queued behind ~49 kB ⇒ ≥ ~35 ms extra vs the first.
	spread := arr[n-1].at.Sub(arr[0].at)
	if spread < 20*time.Millisecond {
		t.Errorf("burst drained in %v: queueing not emulated", spread)
	}
}

func TestEmulatorDropsOnOverflow(t *testing.T) {
	s := newSink(t)
	e, stop := startEmu(t, Config{Params: testParams()}, s.conn.LocalAddr().(*net.UDPAddr))
	defer stop()
	src := dialTo(t, e.Addr())

	// 200 × 1250 B = 250 kB into a 62.5 kB buffer, sent as fast as the OS
	// allows: most must drop.
	const n = 200
	for i := 0; i < n; i++ {
		src.Write(make([]byte, 1250))
	}
	waitFor(t, func() bool {
		st := e.Stats()
		return st.Delivered+st.Dropped >= uint64(n)*9/10
	}, 3*time.Second)
	st := e.Stats()
	if st.Dropped == 0 {
		t.Errorf("no drops on 4× overflow; stats %+v", st)
	}
	if st.Delivered == 0 {
		t.Errorf("nothing delivered; stats %+v", st)
	}
}

func TestEmulatorStatLoss(t *testing.T) {
	p := testParams()
	p.LossRate = 0.5
	s := newSink(t)
	e, stop := startEmu(t, Config{Params: p, Variant: iboxnet.StatLoss, Seed: 3},
		s.conn.LocalAddr().(*net.UDPAddr))
	defer stop()
	src := dialTo(t, e.Addr())

	const n = 200
	for i := 0; i < n; i++ {
		src.Write(make([]byte, 200))
		time.Sleep(time.Millisecond) // stay under the bandwidth
	}
	waitFor(t, func() bool {
		st := e.Stats()
		return st.Delivered+st.Dropped >= uint64(n)*9/10
	}, 3*time.Second)
	st := e.Stats()
	frac := float64(st.Dropped) / float64(st.Dropped+st.Delivered)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("random-loss fraction %.2f, want ≈0.5 (stats %+v)", frac, st)
	}
}

func TestEmulatorCrossTrafficReplay(t *testing.T) {
	// A single 50 kB cross-traffic burst at t=0.5 s takes 40 ms to drain at
	// 10 Mbps; a probe sent just after the burst must queue behind it.
	p := testParams()
	ct := trace.NewSeries(0, 100*sim.Millisecond, 20)
	ct.Vals[5] = 50_000
	p.CrossTraffic = ct
	s := newSink(t)
	e, stop := startEmu(t, Config{Params: p, Variant: iboxnet.Full},
		s.conn.LocalAddr().(*net.UDPAddr))
	defer stop()
	src := dialTo(t, e.Addr())

	// Baseline probe before the burst: near-propagation delay.
	sentA := time.Now()
	src.Write(make([]byte, 200))
	time.Sleep(510 * time.Millisecond) // burst injected at ~500 ms
	sentB := time.Now()
	src.Write(make([]byte, 200))
	if !waitFor(t, func() bool { return s.count() == 2 }, 2*time.Second) {
		t.Fatalf("probes lost; stats %+v", e.Stats())
	}
	arr := s.arrivals()
	dA := arr[0].at.Sub(sentA)
	dB := arr[1].at.Sub(sentB)
	// Burst of 50 kB minus ~12.5 kB drained in 10 ms ⇒ ≈30 ms extra queue.
	if dB < dA+15*time.Millisecond {
		t.Errorf("post-burst delay %v not above pre-burst %v + queueing", dB, dA)
	}
}

func TestEmulatorRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Params: iboxnet.Params{}}); err == nil {
		t.Error("zero params accepted")
	}
	if _, err := New(Config{Params: testParams(), Listen: "nonsense::::", Forward: "127.0.0.1:9"}); err == nil {
		t.Error("bad listen addr accepted")
	}
	if _, err := New(Config{Params: testParams(), Listen: "127.0.0.1:0", Forward: "nonsense::::"}); err == nil {
		t.Error("bad forward addr accepted")
	}
}

// TestStatsConcurrent hammers Stats() from a monitoring goroutine while
// traffic flows through the datapath. Under -race this proves Stats is
// lock-free against admit/advanceQueue (the historical hazard: queuedB
// was read unsynchronized while deliverLoop and admit mutated state).
// It also checks the snapshot is always coherent: counters monotone,
// QueuedBytes finite, non-negative, and bounded by the buffer.
func TestStatsConcurrent(t *testing.T) {
	s := newSink(t)
	p := testParams()
	p.LossRate = 0.05
	e, stop := startEmu(t, Config{Params: p, Variant: iboxnet.StatLoss, Seed: 7},
		s.conn.LocalAddr().(*net.UDPAddr))
	defer stop()
	src := dialTo(t, e.Addr())

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	// Sender: blast packets at the emulator for the test duration.
	go func() {
		defer wg.Done()
		pkt := make([]byte, 1200)
		for {
			select {
			case <-done:
				return
			default:
				src.Write(pkt)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	// Monitor: poll Stats in a tight loop, checking coherence.
	go func() {
		defer wg.Done()
		var prev Stats
		for {
			select {
			case <-done:
				return
			default:
			}
			st := e.Stats()
			if st.Received < prev.Received || st.Delivered < prev.Delivered || st.Dropped < prev.Dropped {
				t.Errorf("counters went backwards: %+v after %+v", st, prev)
				return
			}
			if math.IsNaN(st.QueuedBytes) || st.QueuedBytes < 0 ||
				st.QueuedBytes > float64(p.BufferBytes) {
				t.Errorf("incoherent QueuedBytes %v (buffer %d)", st.QueuedBytes, p.BufferBytes)
				return
			}
			prev = st
		}
	}()

	time.Sleep(250 * time.Millisecond)
	close(done)
	wg.Wait()
	if st := e.Stats(); st.Received == 0 {
		t.Errorf("no traffic observed during concurrent run: %+v", st)
	}
}
