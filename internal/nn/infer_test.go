package nn

import (
	"math"
	"testing"
)

// kernelShapes deliberately covers the awkward cases: In ≠ Hidden in both
// directions, 1–4 layers, and Hidden values with every residue mod 4 so
// the SIMD whole-group path, the scalar remainder path, and the
// no-full-group path (Hidden < 4) all run.
var kernelShapes = []struct{ in, hidden, layers int }{
	{3, 5, 1},
	{4, 6, 2},
	{7, 3, 3},
	{5, 9, 4},
	{2, 4, 2},
	{6, 13, 2},
	{1, 1, 1},
	{4, 8, 3},
}

// bitsEqual fails the test unless a and b are bitwise-identical.
func bitsEqual(t *testing.T, what string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d != %d", what, len(a), len(b))
	}
	for j := range a {
		if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
			t.Fatalf("%s: [%d] = %x (%v) != %x (%v)",
				what, j, math.Float64bits(a[j]), a[j], math.Float64bits(b[j]), b[j])
		}
	}
}

// TestInferStepMatchesLSTMStep pins the core bitwise contract: the
// compiled kernel's per-step output equals the training-path LSTM.Step
// float-for-float, across shapes that exercise the SIMD group, scalar
// remainder, and tiny-layer paths.
func TestInferStepMatchesLSTMStep(t *testing.T) {
	for _, sh := range kernelShapes {
		lstm := NewLSTM(sh.in, sh.hidden, sh.layers, 7)
		im := lstm.Compile()
		st := im.NewState()
		ref := lstm.NewState()
		xs := randSeq(31, 12, sh.in)
		for _, x := range xs {
			got := im.StepInto(st, x)
			var want []float64
			want, ref = lstm.Step(ref, x)
			bitsEqual(t, "step output", got, want)
		}
	}
}

// TestInferForwardMatchesStepInto pins the layer-major pre-projected
// window forward against the sequential step kernel, bitwise.
func TestInferForwardMatchesStepInto(t *testing.T) {
	for _, sh := range kernelShapes {
		lstm := NewLSTM(sh.in, sh.hidden, sh.layers, 9)
		im := lstm.Compile()
		for _, T := range []int{1, 2, 5, 9} {
			xs := randSeq(int64(40+T), T, sh.in)
			outs := im.Forward(xs)
			st := im.NewState()
			for tt, x := range xs {
				want := im.StepInto(st, x)
				bitsEqual(t, "forward output", outs[tt], want)
			}
		}
	}
}

// TestPreProjectedStepMatchesPlain pins the prefix pre-projection path:
// pre-projecting any prefix [0, upto) of the input columns and resuming
// via StepBatchInto(tailOff=upto) must reproduce the plain step bitwise,
// for every possible split point.
func TestPreProjectedStepMatchesPlain(t *testing.T) {
	for _, sh := range kernelShapes {
		lstm := NewLSTM(sh.in, sh.hidden, sh.layers, 11)
		im := lstm.Compile()
		const T = 6
		xs := randSeq(77, T, sh.in)
		rows := im.InputRowsPerStep()
		for upto := 0; upto <= sh.in; upto++ {
			pre := make([]float64, T*rows)
			im.PreProjectInput(pre, xs, upto)
			st := im.NewState()
			ref := im.NewState()
			for tt, x := range xs {
				im.StepBatchInto([]*InferState{st}, [][]float64{x},
					[][]float64{pre[tt*rows : (tt+1)*rows]}, upto)
				want := im.StepInto(ref, x)
				bitsEqual(t, "pre-projected step", st.Top(), want)
			}
		}
	}
}

// TestStepBatchIntoMatchesStepInto checks member independence: a batch of
// states over different sequences advances each exactly as it would
// alone.
func TestStepBatchIntoMatchesStepInto(t *testing.T) {
	lstm := NewLSTM(4, 6, 2, 13)
	im := lstm.Compile()
	const n, T = 5, 8
	seqs := make([][][]float64, n)
	refs := make([]*InferState, n)
	sts := make([]*InferState, n)
	for b := range seqs {
		seqs[b] = randSeq(int64(500+b), T, 4)
		refs[b] = im.NewState()
		sts[b] = im.NewState()
	}
	for tt := 0; tt < T; tt++ {
		xs := make([][]float64, n)
		for b := range xs {
			xs[b] = seqs[b][tt]
		}
		im.StepBatchInto(sts, xs, nil, 0)
		for b := 0; b < n; b++ {
			want := im.StepInto(refs[b], seqs[b][tt])
			bitsEqual(t, "batched step", sts[b].Top(), want)
		}
	}
}

// TestStepIntoNoAllocs pins the zero-allocation contract of the
// per-packet kernel step.
func TestStepIntoNoAllocs(t *testing.T) {
	lstm := NewLSTM(5, 24, 2, 17)
	im := lstm.Compile()
	st := im.NewState()
	x := randSeq(3, 1, 5)[0]
	if n := testing.AllocsPerRun(100, func() { im.StepInto(st, x) }); n != 0 {
		t.Fatalf("StepInto allocates %v times per step, want 0", n)
	}
}

// TestPredictorStepNoAllocs pins the zero-allocation contract of the full
// per-packet prediction path (kernel step + dense head).
func TestPredictorStepNoAllocs(t *testing.T) {
	m := NewSequenceModel(GaussianHead, 5, 24, 2, 19)
	p := m.NewPredictor()
	x := randSeq(4, 1, 5)[0]
	if n := testing.AllocsPerRun(100, func() { p.StepGaussian(x) }); n != 0 {
		t.Fatalf("StepGaussian allocates %v times per step, want 0", n)
	}
}

// TestQuantizedKernel checks the opt-in int8 path: it must run every
// shape, produce finite outputs in the ballpark of the float kernel
// (NOT bitwise — that is the documented caveat), and refuse
// pre-projection.
func TestQuantizedKernel(t *testing.T) {
	for _, sh := range kernelShapes {
		lstm := NewLSTM(sh.in, sh.hidden, sh.layers, 23)
		im := lstm.Compile()
		qm := lstm.CompileQuantized()
		if im.Quantized() || !qm.Quantized() {
			t.Fatal("Quantized() flags wrong")
		}
		st, qst := im.NewState(), qm.NewState()
		xs := randSeq(55, 10, sh.in)
		for _, x := range xs {
			want := im.StepInto(st, x)
			got := qm.StepInto(qst, x)
			for j := range got {
				if math.IsNaN(got[j]) || math.IsInf(got[j], 0) {
					t.Fatalf("quantized output not finite: %v", got[j])
				}
				// Hidden activations are tanh-bounded; int8 per-row scales
				// keep the pre-activations close, so outputs stay near the
				// float path without being equal to it.
				if d := math.Abs(got[j] - want[j]); d > 0.15 {
					t.Fatalf("quantized output drifted: |%v - %v| = %v", got[j], want[j], d)
				}
			}
		}
	}
	lstm := NewLSTM(4, 8, 1, 29)
	qm := lstm.CompileQuantized()
	defer func() {
		if recover() == nil {
			t.Fatal("PreProjectInput on a quantized kernel did not panic")
		}
	}()
	qm.PreProjectInput(make([]float64, qm.InputRowsPerStep()), randSeq(1, 1, 4), 2)
}

// FuzzInferKernel fuzzes shape and data seeds: whatever the dimensions,
// the compiled kernel must match the training-path step bitwise.
func FuzzInferKernel(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(5), uint8(2), uint8(4))
	f.Add(int64(9), uint8(1), uint8(1), uint8(1), uint8(1))
	f.Add(int64(42), uint8(8), uint8(16), uint8(4), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, in8, hid8, lay8, steps8 uint8) {
		in := 1 + int(in8)%9
		hidden := 1 + int(hid8)%17
		layers := 1 + int(lay8)%4
		steps := 1 + int(steps8)%8
		lstm := NewLSTM(in, hidden, layers, seed)
		im := lstm.Compile()
		st := im.NewState()
		ref := lstm.NewState()
		for _, x := range randSeq(seed+1, steps, in) {
			got := im.StepInto(st, x)
			var want []float64
			want, ref = lstm.Step(ref, x)
			for j := range got {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("in=%d hidden=%d layers=%d: h[%d] %v != %v",
						in, hidden, layers, j, got[j], want[j])
				}
			}
		}
	})
}

// TestInferStateResetReuse checks a reset state replays a sequence to the
// same bits as a fresh one (the serving warm-registry reuse pattern).
func TestInferStateResetReuse(t *testing.T) {
	lstm := NewLSTM(4, 7, 2, 37)
	im := lstm.Compile()
	xs := randSeq(88, 6, 4)
	st := im.NewState()
	first := make([][]float64, len(xs))
	for tt, x := range xs {
		first[tt] = append([]float64(nil), im.StepInto(st, x)...)
	}
	st.Reset()
	for tt, x := range xs {
		bitsEqual(t, "post-reset step", im.StepInto(st, x), first[tt])
	}
}
