//go:build !amd64

package nn

// Portable fallback: no SIMD backend, gatePreScalar covers every unit.

const haveSIMD = false

func layerPreSIMD(blocks, x, h, pre, out *float64, nx, nh, groups, xoff, blkBytes int64) {
	panic("nn: layerPreSIMD called without SIMD support")
}
