package nn

import "math"

// Inference-specialized LSTM kernels. Training needs per-step caches and
// the Wx/Wh split for BPTT; inference needs neither, so Compile repacks a
// trained stack once into a layout built for the per-step read pattern and
// the kernels below run on it allocation-free.
//
// Packed layout (InferLayer.packed): one block per hidden unit, holding
// the unit's four gate rows (i, f, g, o) *interleaved by column*:
//
//	unit j block:  [ b_i  b_f  b_g  b_o ]                     biases
//	               [ Wx_i[0]  Wx_f[0]  Wx_g[0]  Wx_o[0] ]     input col 0
//	               [ ...                               ]      ... col k
//	               [ Wh_i[0]  Wh_f[0]  Wh_g[0]  Wh_o[0] ]     recurrent col 0
//	               [ ...                               ]      ... col k
//
// A forward step walks this buffer front to back exactly once, so the
// whole weight set streams through cache linearly per step, and each
// column k yields the four gates' weights as one contiguous 32-byte
// quad: the natural shape both for four independent scalar accumulator
// chains (≈4× ILP on the latency-bound dot products) and for one 4-lane
// SIMD vector per unit (see infer_kernel_amd64.s — lane g runs gate row
// g's chain with separate multiply and add roundings, so SIMD changes
// nothing numerically).
//
// Correctness contract: per gate row the floating-point operation order is
// exactly LSTMLayer.step's — bias first, then input terms in ascending k,
// then recurrent terms in ascending k — so every kernel in this file is
// bitwise-identical to the training-path forward step. The only exception
// is the opt-in int8 path (see infer_int8.go), which is documented as NOT
// bitwise-identical and is off everywhere by default.
//
// Window pre-projection: when an input window is fully known up front
// (open-loop replay, sequence forward), the input-and-bias half
// b + Wx·x_t of every row is a GEMM over the whole window. preProject
// computes it for all T timesteps in a register-blocked pass (weights
// stream once per four timesteps instead of once per step), and the
// sequential pass resumes each row's accumulator from the stored partial
// sum — the addition sequence per row is unchanged, so bitwise identity
// holds. Closed-loop replay knows a *prefix* of each input row up front
// (the d_{t−1} feedback column and anything after it arrive at step
// time); preProject with upto < In pre-projects just that prefix and
// the step adds the remaining input terms, still in ascending k.

// InferLayer is one LSTM layer repacked for inference.
type InferLayer struct {
	In, Hidden int
	blkStride  int       // floats per unit block: 4*(1 + In + Hidden)
	packed     []float64 // Hidden unit blocks (see file comment)

	// Optional int8-quantized weights (see infer_int8.go); nil on the
	// default float path.
	q *quantLayer
}

// InferModel is a compiled inference kernel for an LSTM stack.
type InferModel struct {
	Layers []*InferLayer
	maxH   int
}

// Compile repacks the stack's weights into the fused inference layout.
// Call it once after training (or loading) completes; later weight
// updates are not reflected in the compiled kernel.
func (m *LSTM) Compile() *InferModel {
	im := &InferModel{}
	for _, l := range m.Layers {
		im.Layers = append(im.Layers, compileLayer(l))
		if l.Hidden > im.maxH {
			im.maxH = l.Hidden
		}
	}
	return im
}

func compileLayer(l *LSTMLayer) *InferLayer {
	In, H := l.In, l.Hidden
	bs := 4 * (1 + In + H)
	il := &InferLayer{In: In, Hidden: H, blkStride: bs, packed: make([]float64, H*bs)}
	for j := 0; j < H; j++ {
		blk := il.packed[j*bs : (j+1)*bs]
		for g := 0; g < 4; g++ {
			src := g*H + j // row index in the i|f|g|o blocked training layout
			blk[g] = l.B.W[src]
			for k := 0; k < In; k++ {
				blk[4+k*4+g] = l.Wx.W[src*In+k]
			}
			for k := 0; k < H; k++ {
				blk[4+In*4+k*4+g] = l.Wh.W[src*H+k]
			}
		}
	}
	return il
}

// Quantized reports whether this kernel uses the int8 weight path.
func (im *InferModel) Quantized() bool {
	return len(im.Layers) > 0 && im.Layers[0].q != nil
}

// Arch returns the compiled stack's architecture: layer 0's input width,
// the (uniform) hidden width, and the layer count.
func (im *InferModel) Arch() (in, hidden, layers int) {
	if len(im.Layers) == 0 {
		return 0, 0, 0
	}
	return im.Layers[0].In, im.Layers[0].Hidden, len(im.Layers)
}

// SameArch reports whether two compiled kernels can advance side by side
// in one lane batch: identical per-layer (In, Hidden) shapes and the same
// quantization mode. Weight values are free to differ — that is the whole
// point of cross-checkpoint lane batching (StepBatchLanesInto).
func (im *InferModel) SameArch(o *InferModel) bool {
	if len(im.Layers) != len(o.Layers) || im.Quantized() != o.Quantized() {
		return false
	}
	for i, l := range im.Layers {
		if l.In != o.Layers[i].In || l.Hidden != o.Layers[i].Hidden {
			return false
		}
	}
	return true
}

// InferState is the recurrent state for a compiled kernel plus the
// scratch the zero-alloc step needs. States are cheap to reset and are
// meant to be reused across sequences; they must not be shared between
// goroutines.
type InferState struct {
	h, c []float64 // all layers' vectors, carved from one backing array
	off  []int     // layer l's h/c live at [off[l], off[l]+H_l)
	hNxt []float64 // ping-pong target: a step reads h and writes hNxt
	pre  []float64 // gate pre-activation scratch, 4*max(Hidden)
}

// NewState returns a zeroed state for the compiled stack.
func (im *InferModel) NewState() *InferState {
	total := 0
	off := make([]int, len(im.Layers))
	for l, il := range im.Layers {
		off[l] = total
		total += il.Hidden
	}
	return &InferState{
		h:    make([]float64, total),
		c:    make([]float64, total),
		hNxt: make([]float64, total),
		pre:  make([]float64, 4*im.maxH),
		off:  off,
	}
}

// Reset zeroes the recurrent state in place.
func (s *InferState) Reset() {
	for i := range s.h {
		s.h[i] = 0
		s.c[i] = 0
	}
}

// top returns the top layer's hidden vector.
func (s *InferState) top() []float64 {
	return s.h[s.off[len(s.off)-1]:]
}

// Top returns the top layer's current hidden vector (the output of the
// most recent step). The slice aliases the state; treat it as read-only
// and valid until the next step.
func (s *InferState) Top() []float64 { return s.top() }

// layer returns layer l's (h, c, hNext) slices.
func (s *InferState) layer(im *InferModel, l int) (h, c, hn []float64) {
	lo := s.off[l]
	hi := lo + im.Layers[l].Hidden
	return s.h[lo:hi], s.c[lo:hi], s.hNxt[lo:hi]
}

// swap makes the just-written hNext vectors current.
func (s *InferState) swap() { s.h, s.hNxt = s.hNxt, s.h }

// StepInto advances the state one timestep in place and returns the top
// layer's hidden vector (valid until the next StepInto on this state).
// It performs no allocation, and its result is bitwise-identical to
// LSTM.Step on the same weights and state trajectory.
func (im *InferModel) StepInto(st *InferState, x []float64) []float64 {
	im.stepLane(st, x, nil, 0)
	return st.top()
}

// stepLane advances one state one timestep through this stack — the
// shared inner body of StepInto, StepBatchInto, and StepBatchLanesInto.
// pre/tailOff optionally carry the timestep's pre-projected layer-0
// prefix (see PreProjectInput); pass (nil, 0) otherwise.
func (im *InferModel) stepLane(st *InferState, x, pre []float64, tailOff int) {
	in := x
	for li, l := range im.Layers {
		h, c, hn := st.layer(im, li)
		switch {
		case l.q != nil:
			l.q.step(h, c, hn, in)
		case li == 0:
			l.step(h, c, hn, in, pre, tailOff, st.pre)
		default:
			l.step(h, c, hn, in, nil, 0, st.pre)
		}
		in = hn
	}
	st.swap()
}

// step advances one layer: hNew and c are written from hPrev, c and
// input x. pre, when non-nil, holds this timestep's pre-projected partial
// row sums (unit-major 4-per-unit order, covering the bias and input
// columns k < tailOff); input terms k >= tailOff are taken from x. With
// pre == nil the accumulators start from the packed biases and tailOff
// must be 0. preAct is caller scratch of at least 4*Hidden floats. c is
// updated in place; hNew must not alias hPrev.
func (l *InferLayer) step(hPrev, c, hNew, x []float64, pre []float64, tailOff int, preAct []float64) {
	l.gatePre(preAct[:4*l.Hidden], hPrev, x, pre, tailOff)
	gateUpdate(preAct, c, hNew)
}

// gatePre computes every gate row's pre-activation into dst (unit-major,
// 4 per unit): the SIMD kernel covers whole 4-unit groups when available,
// the scalar loop the rest. Both run the identical per-row operation
// sequence.
func (l *InferLayer) gatePre(dst, hPrev, x, pre []float64, tailOff int) {
	j0 := 0
	if haveSIMD {
		if groups := l.Hidden / 4; groups > 0 {
			var preP *float64
			if pre != nil {
				preP = &pre[0]
			}
			hp := &hPrev[0]
			xp := hp // x is never read when tailOff == In (nil x allowed)
			if len(x) > 0 {
				xp = &x[0]
			}
			layerPreSIMD(&l.packed[0], xp, hp, preP, &dst[0],
				int64(l.In), int64(len(hPrev)), int64(groups), int64(tailOff), int64(l.blkStride*8))
			j0 = groups * 4
		}
	}
	l.gatePreScalar(dst, hPrev, x, pre, tailOff, j0)
}

// gatePreScalar is the portable gate pre-activation kernel, covering
// units [j0, Hidden). The four gate rows of a unit run as four
// independent accumulator chains off shared x/h loads.
func (l *InferLayer) gatePreScalar(dst, hPrev, x, pre []float64, tailOff, j0 int) {
	In, bs := l.In, l.blkStride
	for j := j0; j < l.Hidden; j++ {
		blk := l.packed[j*bs : (j+1)*bs]
		var ai, af, ag, ao float64
		if pre != nil {
			ai, af, ag, ao = pre[j*4], pre[j*4+1], pre[j*4+2], pre[j*4+3]
		} else {
			ai, af, ag, ao = blk[0], blk[1], blk[2], blk[3]
		}
		wx := blk[4 : 4+In*4]
		for k := tailOff; k < In; k++ {
			xv := x[k]
			ai += wx[k*4] * xv
			af += wx[k*4+1] * xv
			ag += wx[k*4+2] * xv
			ao += wx[k*4+3] * xv
		}
		wh := blk[4+In*4:]
		for k, hv := range hPrev {
			ai += wh[k*4] * hv
			af += wh[k*4+1] * hv
			ag += wh[k*4+2] * hv
			ao += wh[k*4+3] * hv
		}
		dst[j*4] = ai
		dst[j*4+1] = af
		dst[j*4+2] = ag
		dst[j*4+3] = ao
	}
}

// gateUpdate applies the LSTM nonlinearities to pre-activations laid out
// unit-major (4 per unit, i|f|g|o), updating c in place and writing the
// new hidden vector; len(c) units are consumed.
func gateUpdate(pre, c, hNew []float64) {
	for j := range c {
		ig := sigmoid(pre[j*4])
		fg := sigmoid(pre[j*4+1])
		gg := math.Tanh(pre[j*4+2])
		og := sigmoid(pre[j*4+3])
		cj := fg*c[j] + ig*gg
		c[j] = cj
		hNew[j] = og * math.Tanh(cj)
	}
}

// preProject computes, for every timestep t of a known window, each gate
// row's partial sum bias + Σ_{k<upto} Wx[row][k]·xs[t][k], blocked four
// timesteps wide so each weight is loaded once per four steps. dst is
// t-major with rows in the packed unit-major order:
// dst[t*4H + j*4 + g]. Rows resume from these partial sums via the step
// kernels with tailOff = upto; the per-row addition order (bias, then
// input terms ascending k) is exactly the direct step's.
func (l *InferLayer) preProject(dst []float64, xs [][]float64, upto int) {
	H, bs := l.Hidden, l.blkStride
	T := len(xs)
	rows := 4 * H
	for j := 0; j < H; j++ {
		blk := l.packed[j*bs : (j+1)*bs]
		for g := 0; g < 4; g++ {
			r := j*4 + g
			b := blk[g]
			var t int
			for t = 0; t+4 <= T; t += 4 {
				x0, x1, x2, x3 := xs[t], xs[t+1], xs[t+2], xs[t+3]
				a0, a1, a2, a3 := b, b, b, b
				for k := 0; k < upto; k++ {
					w := blk[4+k*4+g]
					a0 += w * x0[k]
					a1 += w * x1[k]
					a2 += w * x2[k]
					a3 += w * x3[k]
				}
				dst[t*rows+r] = a0
				dst[(t+1)*rows+r] = a1
				dst[(t+2)*rows+r] = a2
				dst[(t+3)*rows+r] = a3
			}
			for ; t < T; t++ {
				x := xs[t]
				a := b
				for k := 0; k < upto; k++ {
					a += blk[4+k*4+g] * x[k]
				}
				dst[t*rows+r] = a
			}
		}
	}
}

// InputRowsPerStep reports the per-timestep row count of a layer-0
// pre-projection buffer: 4 gate rows per hidden unit of the first layer.
func (im *InferModel) InputRowsPerStep() int { return 4 * im.Layers[0].Hidden }

// PreProjectInput fills dst (length len(xs)*InputRowsPerStep()) with the
// first layer's pre-projected partial row sums over input columns
// k < upto for every timestep: dst[t*rows+j*4+g] = bias + Σ_{k<upto}
// Wx[row]·xs[t][k]. Pass the result as StepBatchInto's pres (sliced per
// timestep) with tailOff = upto; closed-loop callers use upto = the
// first feedback column, so only the unknown tail runs per step. Not
// supported on quantized kernels.
func (im *InferModel) PreProjectInput(dst []float64, xs [][]float64, upto int) {
	l0 := im.Layers[0]
	if l0.q != nil {
		panic("nn: PreProjectInput unsupported on quantized kernels")
	}
	if upto < 0 || upto > l0.In {
		panic("nn: PreProjectInput column bound out of range")
	}
	l0.preProject(dst, xs, upto)
}

// Forward runs the stack over a fully known input window from a zero
// state and returns the top layer's hidden vector per timestep. It
// traverses layer-major — each layer's inputs (the window for layer 0,
// the full output sequence of the layer below otherwise) are known
// before its sequential pass starts — and picks the input-projection
// strategy per backend: per-step SIMD, or the whole-window blocked
// scalar pre-projection. Results are bitwise-identical to stepping the
// window through StepInto (and hence to LSTM.Step) either way.
func (im *InferModel) Forward(xs [][]float64) [][]float64 {
	T := len(xs)
	if T == 0 {
		return nil
	}
	in := xs
	var outs [][]float64
	var pre, preAct []float64
	for _, l := range im.Layers {
		H := l.Hidden
		slab := make([]float64, T*H)
		outs = make([][]float64, T)
		for t := range outs {
			outs[t] = slab[t*H : (t+1)*H]
		}
		c := make([]float64, H)
		switch {
		case l.q != nil:
			// The quantized path has no pre-projection (its inner loops
			// scale whole dot products); run it sequentially.
			h := make([]float64, H)
			for t := 0; t < T; t++ {
				l.q.step(h, c, outs[t], in[t])
				h = outs[t]
			}
		case haveSIMD:
			// With the vector backend, plain per-step input projection
			// runs in SIMD and beats the scalar 4-timestep-blocked
			// pre-projection. Pre-projected and plain steps are
			// bitwise-identical (the partial-sum resume preserves each
			// row's exact addition order), so the choice is free.
			if cap(preAct) < 4*H {
				preAct = make([]float64, 4*H)
			}
			h := make([]float64, H)
			for t := 0; t < T; t++ {
				l.step(h, c, outs[t], in[t], nil, 0, preAct)
				h = outs[t]
			}
		default:
			// Scalar backend: pre-compute every timestep's input
			// projection in one blocked pass so each weight streams once
			// per four steps, leaving only the recurrent matvec on the
			// sequential path.
			if cap(pre) < T*4*H {
				pre = make([]float64, T*4*H)
			}
			pre = pre[:T*4*H]
			l.preProject(pre, in, l.In)
			if cap(preAct) < 4*H {
				preAct = make([]float64, 4*H)
			}
			h := make([]float64, H)
			for t := 0; t < T; t++ {
				l.step(h, c, outs[t], nil, pre[t*4*H:(t+1)*4*H], l.In, preAct)
				h = outs[t]
			}
		}
		in = outs
	}
	return outs
}

// StepBatchInto advances n independent states one timestep each, feeding
// xs[b] to sts[b]. States advance in place (read each member's top-layer
// output from its state); results are bitwise-identical to StepInto per
// member regardless of batch composition. pres/tailOff optionally carry
// per-member pre-projected layer-0 prefixes, as in PreProjectInput; pass
// (nil, 0) when inputs are not pre-projected.
//
// Members advance one at a time through the fused single-member kernel.
// A member-interleaved variant (each weight load shared by four members'
// accumulator chains) measured slower here: the single-member kernel
// already carries four independent chains per unit — the fused gate
// rows, SIMD lanes when available — and its weight reads are one linear
// stream the prefetcher hides, so sharing them buys nothing while the
// four per-member h streams cost extra loads. What batching still buys
// is the shared per-window setup — feature standardization and layer-0
// pre-projection — and the lockstep call shape the serving batcher
// needs.
func (im *InferModel) StepBatchInto(sts []*InferState, xs [][]float64, pres [][]float64, tailOff int) {
	n := len(sts)
	if n != len(xs) {
		panic("nn: StepBatchInto states/inputs length mismatch")
	}
	for b := 0; b < n; b++ {
		var pre []float64
		if pres != nil {
			pre = pres[b]
		}
		im.stepLane(sts[b], xs[b], pre, tailOff)
	}
}

// StepBatchLanesInto is StepBatchInto generalized to per-lane weights:
// lane b advances sts[b] one timestep through its *own* compiled stack
// ims[b], fed xs[b]. This is the kernel behind cross-checkpoint shape
// batching in the serving layer (internal/serve): many distinct trained
// checkpoints that share one architecture advance pad-free in one
// dispatch.
//
// Per-lane weight pointers come for free from the fused kernel's shape:
// the packed weight base (&packed[0]) is a per-call argument of both the
// AVX2 fast path and the scalar fallback, so swapping checkpoints between
// lanes is just a different base pointer — no layout change, no copying.
// Each lane runs the exact single-member operation sequence (bias first,
// input terms ascending k, then recurrent terms ascending k; no FMA), so
// results are bitwise-identical to StepInto on that lane's own model
// regardless of batch composition or order. Callers that care about
// throughput should place lanes of the same checkpoint adjacently: a
// checkpoint's packed weight stream then stays cache-resident across its
// lanes.
//
// All lanes must share one architecture (SameArch: per-layer In/Hidden
// and quantization mode); mixing shapes panics rather than corrupting
// state. pres/tailOff optionally carry per-lane pre-projected layer-0
// prefixes, as in StepBatchInto.
func StepBatchLanesInto(ims []*InferModel, sts []*InferState, xs [][]float64, pres [][]float64, tailOff int) {
	n := len(ims)
	if n != len(sts) || n != len(xs) {
		panic("nn: StepBatchLanesInto models/states/inputs length mismatch")
	}
	if n == 0 {
		return
	}
	ref := ims[0]
	for b := 1; b < n; b++ {
		if !ref.SameArch(ims[b]) {
			panic("nn: StepBatchLanesInto lanes span incompatible architectures")
		}
	}
	for b := 0; b < n; b++ {
		var pre []float64
		if pres != nil {
			pre = pres[b]
		}
		ims[b].stepLane(sts[b], xs[b], pre, tailOff)
	}
}
