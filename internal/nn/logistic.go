package nn

import "math"

// Logistic is a linear logistic-regression classifier — the paper's
// "lightweight and much faster linear" reordering predictor (§5.1), which
// takes instantaneous sending rate, inter-packet spacing and the
// cross-traffic estimate as features and outputs the likelihood of a
// packet being reordered.
type Logistic struct {
	W []float64
	B float64
	// feature standardization learnt during Fit
	mean, std []float64
	// priorShift is log(wPos/wNeg) from the class re-weighting used in
	// Fit. Training with balanced class weights inflates the learnt odds
	// by exactly this factor; Prob subtracts it so the returned
	// probabilities are calibrated to the true base rate while retaining
	// the reweighted fit's discrimination.
	priorShift float64
}

// NewLogistic returns an untrained classifier for dim features.
func NewLogistic(dim int) *Logistic {
	l := &Logistic{W: make([]float64, dim), mean: make([]float64, dim), std: make([]float64, dim)}
	for i := range l.std {
		l.std[i] = 1
	}
	return l
}

// Fit trains with full-batch gradient descent plus momentum on the
// standardized features, with class re-weighting (reordering events are
// rare). Labels are 0/1; epochs full passes are made. The procedure is
// deterministic, so seed is accepted only for interface symmetry with the
// stochastic trainers.
func (l *Logistic) Fit(xs [][]float64, ys []float64, epochs int, lr float64, seed int64) {
	_ = seed
	n := len(xs)
	if n == 0 {
		return
	}
	d := len(l.W)
	// Standardize features for conditioning.
	for j := 0; j < d; j++ {
		s := 0.0
		for _, x := range xs {
			s += x[j]
		}
		l.mean[j] = s / float64(n)
		v := 0.0
		for _, x := range xs {
			dd := x[j] - l.mean[j]
			v += dd * dd
		}
		l.std[j] = math.Sqrt(v / float64(n))
		if l.std[j] == 0 {
			l.std[j] = 1
		}
	}
	// Class weighting: reordering is rare, so balance the loss.
	pos := 0.0
	for _, y := range ys {
		pos += y
	}
	wPos, wNeg := 1.0, 1.0
	if pos > 0 && pos < float64(n) {
		wPos = float64(n) / (2 * pos)
		wNeg = float64(n) / (2 * (float64(n) - pos))
	}
	l.priorShift = math.Log(wPos / wNeg)
	gw := make([]float64, d)
	vw := make([]float64, d)
	var gb, vb float64
	for e := 0; e < epochs; e++ {
		for j := range gw {
			gw[j] = 0
		}
		gb = 0
		for i, x := range xs {
			z := l.B
			for j := 0; j < d; j++ {
				z += l.W[j] * (x[j] - l.mean[j]) / l.std[j]
			}
			p := sigmoid(z)
			w := wNeg
			if ys[i] > 0.5 {
				w = wPos
			}
			g := w * (p - ys[i]) / float64(n)
			for j := 0; j < d; j++ {
				gw[j] += g * (x[j] - l.mean[j]) / l.std[j]
			}
			gb += g
		}
		for j := 0; j < d; j++ {
			vw[j] = 0.9*vw[j] + gw[j]
			l.W[j] -= lr * vw[j]
		}
		vb = 0.9*vb + gb
		l.B -= lr * vb
	}
}

// Prob returns the calibrated P(y=1 | x): the class-weight prior shift
// applied during Fit is removed so probabilities track the true base rate.
func (l *Logistic) Prob(x []float64) float64 {
	return sigmoid(l.logit(x) - l.priorShift)
}

// Score returns the uncalibrated (class-balanced) probability, useful as a
// ranking score with a 0.5 decision threshold on imbalanced data.
func (l *Logistic) Score(x []float64) float64 {
	return sigmoid(l.logit(x))
}

func (l *Logistic) logit(x []float64) float64 {
	z := l.B
	for j := range l.W {
		z += l.W[j] * (x[j] - l.mean[j]) / l.std[j]
	}
	return z
}
