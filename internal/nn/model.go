package nn

import (
	"math"
	"sync"
)

// GaussianOutput is a predicted delay distribution N(Mu, Sigma²), the
// paper's P(d_t | h_t) with w₁ᵀh and w₂ᵀh heads (§4.1).
type GaussianOutput struct {
	Mu    float64
	Sigma float64
}

const (
	logSigmaMin = -5
	logSigmaMax = 4
)

// gaussianFromHead maps the 2-vector head output (mu, logSigma) to a
// distribution, clamping logSigma for numeric stability.
func gaussianFromHead(out []float64) GaussianOutput {
	ls := out[1]
	if ls < logSigmaMin {
		ls = logSigmaMin
	}
	if ls > logSigmaMax {
		ls = logSigmaMax
	}
	return GaussianOutput{Mu: out[0], Sigma: math.Exp(ls)}
}

// gaussianNLL returns the negative log likelihood of y under the head
// output and the gradient with respect to the raw head outputs
// (mu, logSigma).
func gaussianNLL(out []float64, y float64) (loss float64, dOut []float64) {
	g := gaussianFromHead(out)
	z := (y - g.Mu) / g.Sigma
	loss = 0.5*math.Log(2*math.Pi) + math.Log(g.Sigma) + 0.5*z*z
	dMu := -(y - g.Mu) / (g.Sigma * g.Sigma)
	dLogSigma := 1 - z*z
	// Clamp regions have zero gradient through logSigma.
	if out[1] <= logSigmaMin || out[1] >= logSigmaMax {
		dLogSigma = 0
	}
	return loss, []float64{dMu, dLogSigma}
}

// bceLoss returns the binary cross-entropy of label y ∈ {0,1} for a raw
// logit, and the gradient with respect to the logit.
func bceLoss(logit, y float64) (loss, dLogit float64) {
	p := sigmoid(logit)
	eps := 1e-12
	loss = -(y*math.Log(p+eps) + (1-y)*math.Log(1-p+eps))
	return loss, p - y
}

// HeadKind selects the output distribution of a SequenceModel.
type HeadKind int

const (
	// GaussianHead predicts a Normal distribution per step (delay model).
	GaussianHead HeadKind = iota
	// BinaryHead predicts a Bernoulli probability per step (reordering
	// predictor).
	BinaryHead
)

// SequenceModel is the deep state-space model of Fig 6: a multi-layer LSTM
// encoding the network state h_t from the input features, with a dense
// head parameterizing the per-step output distribution.
type SequenceModel struct {
	Kind HeadKind
	LSTM *LSTM
	Head *Dense

	// Lazily compiled inference kernels (see infer.go). Guarded by mu;
	// invalidated whenever TrainSequence touches the weights so a kernel
	// never serves stale parameters.
	mu    sync.Mutex
	infer *InferModel
	quant *InferModel
}

// Infer returns the compiled float inference kernel for the current
// weights, compiling it on first use. Safe for concurrent callers.
func (m *SequenceModel) Infer() *InferModel {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.infer == nil {
		m.infer = m.LSTM.Compile()
	}
	return m.infer
}

// InferQuantized is Infer for the opt-in int8 kernel. Unlike every other
// inference path it is NOT bitwise-identical to LSTM.Step — see
// infer_int8.go for the accuracy caveats.
func (m *SequenceModel) InferQuantized() *InferModel {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.quant == nil {
		m.quant = m.LSTM.CompileQuantized()
	}
	return m.quant
}

// invalidateKernels drops compiled kernels after a weight update.
func (m *SequenceModel) invalidateKernels() {
	m.mu.Lock()
	m.infer = nil
	m.quant = nil
	m.mu.Unlock()
}

// NewSequenceModel builds an LSTM stack (in→hidden ×layers) with the
// appropriate head.
func NewSequenceModel(kind HeadKind, in, hidden, layers int, seed int64) *SequenceModel {
	outDim := 2
	if kind == BinaryHead {
		outDim = 1
	}
	return &SequenceModel{
		Kind: kind,
		LSTM: NewLSTM(in, hidden, layers, seed),
		Head: NewDense(hidden, outDim, seed+997),
	}
}

// Params returns every learnable parameter.
func (m *SequenceModel) Params() []*Param {
	return append(m.LSTM.Params(), m.Head.Params()...)
}

// NumParams reports the total number of scalar parameters.
func (m *SequenceModel) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.W)
	}
	return n
}

// TrainSequence accumulates gradients for one (xs, ys) sequence and
// returns the mean per-step loss. mask[t]=false skips step t's loss (e.g.
// lost packets whose delay is unobserved); a nil mask trains on every
// step. Call opt.Step() afterwards to apply the update.
func (m *SequenceModel) TrainSequence(xs [][]float64, ys []float64, mask []bool) float64 {
	if len(xs) == 0 || len(xs) != len(ys) {
		return math.NaN()
	}
	// The optimizer step that follows this call will change the weights;
	// drop any compiled inference kernel now so the next Infer() sees them.
	m.invalidateKernels()
	outs, caches := m.LSTM.ForwardSequence(xs)
	dOut := make([][]float64, len(xs))
	total := 0.0
	counted := 0
	for t := range xs {
		dOut[t] = make([]float64, m.LSTM.Hidden())
		if mask != nil && !mask[t] {
			continue
		}
		headOut := m.Head.Forward(outs[t])
		var loss float64
		var dHead []float64
		if m.Kind == GaussianHead {
			loss, dHead = gaussianNLL(headOut, ys[t])
		} else {
			var dLogit float64
			loss, dLogit = bceLoss(headOut[0], ys[t])
			dHead = []float64{dLogit}
		}
		total += loss
		counted++
		dOut[t] = m.Head.Backward(outs[t], dHead)
	}
	if counted == 0 {
		return math.NaN()
	}
	// Normalize so the step size is invariant to sequence length.
	scale := 1 / float64(counted)
	for t := range dOut {
		for k := range dOut[t] {
			dOut[t][k] *= scale
		}
	}
	// The head gradients were accumulated unscaled; rescale them too.
	for _, p := range m.Head.Params() {
		for i := range p.Grad {
			p.Grad[i] *= scale
		}
	}
	m.LSTM.BackwardSequence(caches, dOut)
	return total * scale
}

// Predictor is a stateful inference handle over a trained SequenceModel,
// supporting the closed-loop unrolling of Fig 6 (predicted delays fed back
// as the next step's input by the caller). It runs on the compiled
// inference kernel (see infer.go): steps are allocation-free and
// bitwise-identical to LSTM.Step. The kernel binds the weights as of
// construction; build a new Predictor after further training.
type Predictor struct {
	model *SequenceModel
	im    *InferModel
	st    *InferState
	head  []float64
}

// NewPredictor returns an inference handle with zero state.
func (m *SequenceModel) NewPredictor() *Predictor {
	im := m.Infer()
	return &Predictor{model: m, im: im, st: im.NewState(), head: make([]float64, m.Head.Out)}
}

// NewPredictorQuantized is NewPredictor on the opt-in int8 kernel (not
// bitwise-identical; see infer_int8.go).
func (m *SequenceModel) NewPredictorQuantized() *Predictor {
	im := m.InferQuantized()
	return &Predictor{model: m, im: im, st: im.NewState(), head: make([]float64, m.Head.Out)}
}

// Reset zeroes the recurrent state in place.
func (p *Predictor) Reset() { p.st.Reset() }

// StepGaussian advances one timestep and returns the predicted delay
// distribution. Valid only for GaussianHead models. Allocation-free.
func (p *Predictor) StepGaussian(x []float64) GaussianOutput {
	h := p.im.StepInto(p.st, x)
	p.model.Head.ForwardInto(h, p.head)
	return gaussianFromHead(p.head)
}

// StepProb advances one timestep and returns the predicted event
// probability. Valid only for BinaryHead models. Allocation-free.
func (p *Predictor) StepProb(x []float64) float64 {
	h := p.im.StepInto(p.st, x)
	p.model.Head.ForwardInto(h, p.head)
	return sigmoid(p.head[0])
}

// HeadGaussian maps a top-layer hidden vector (e.g. InferState.Top)
// through the Gaussian head without allocating; scratch must have
// length Head.Out. Identical arithmetic to StepGaussian's head stage.
func (m *SequenceModel) HeadGaussian(h, scratch []float64) GaussianOutput {
	m.Head.ForwardInto(h, scratch)
	return gaussianFromHead(scratch)
}

// PredictSequence runs Gaussian inference over a whole input sequence from
// a fresh state (open loop: the caller supplies all features). Because the
// window is fully known, the input projections run as one blocked GEMM per
// layer (InferModel.Forward) — same results, far fewer weight streams.
func (m *SequenceModel) PredictSequence(xs [][]float64) []GaussianOutput {
	return m.PredictSequenceOn(m.Infer(), xs)
}

// PredictSequenceOn is PredictSequence on a specific compiled kernel
// (e.g. InferQuantized for the opt-in int8 path).
func (m *SequenceModel) PredictSequenceOn(im *InferModel, xs [][]float64) []GaussianOutput {
	hs := im.Forward(xs)
	out := make([]GaussianOutput, len(xs))
	head := make([]float64, m.Head.Out)
	for t, h := range hs {
		m.Head.ForwardInto(h, head)
		out[t] = gaussianFromHead(head)
	}
	return out
}
