package nn

import (
	"math"
)

// GaussianOutput is a predicted delay distribution N(Mu, Sigma²), the
// paper's P(d_t | h_t) with w₁ᵀh and w₂ᵀh heads (§4.1).
type GaussianOutput struct {
	Mu    float64
	Sigma float64
}

const (
	logSigmaMin = -5
	logSigmaMax = 4
)

// gaussianFromHead maps the 2-vector head output (mu, logSigma) to a
// distribution, clamping logSigma for numeric stability.
func gaussianFromHead(out []float64) GaussianOutput {
	ls := out[1]
	if ls < logSigmaMin {
		ls = logSigmaMin
	}
	if ls > logSigmaMax {
		ls = logSigmaMax
	}
	return GaussianOutput{Mu: out[0], Sigma: math.Exp(ls)}
}

// gaussianNLL returns the negative log likelihood of y under the head
// output and the gradient with respect to the raw head outputs
// (mu, logSigma).
func gaussianNLL(out []float64, y float64) (loss float64, dOut []float64) {
	g := gaussianFromHead(out)
	z := (y - g.Mu) / g.Sigma
	loss = 0.5*math.Log(2*math.Pi) + math.Log(g.Sigma) + 0.5*z*z
	dMu := -(y - g.Mu) / (g.Sigma * g.Sigma)
	dLogSigma := 1 - z*z
	// Clamp regions have zero gradient through logSigma.
	if out[1] <= logSigmaMin || out[1] >= logSigmaMax {
		dLogSigma = 0
	}
	return loss, []float64{dMu, dLogSigma}
}

// bceLoss returns the binary cross-entropy of label y ∈ {0,1} for a raw
// logit, and the gradient with respect to the logit.
func bceLoss(logit, y float64) (loss, dLogit float64) {
	p := sigmoid(logit)
	eps := 1e-12
	loss = -(y*math.Log(p+eps) + (1-y)*math.Log(1-p+eps))
	return loss, p - y
}

// HeadKind selects the output distribution of a SequenceModel.
type HeadKind int

const (
	// GaussianHead predicts a Normal distribution per step (delay model).
	GaussianHead HeadKind = iota
	// BinaryHead predicts a Bernoulli probability per step (reordering
	// predictor).
	BinaryHead
)

// SequenceModel is the deep state-space model of Fig 6: a multi-layer LSTM
// encoding the network state h_t from the input features, with a dense
// head parameterizing the per-step output distribution.
type SequenceModel struct {
	Kind HeadKind
	LSTM *LSTM
	Head *Dense
}

// NewSequenceModel builds an LSTM stack (in→hidden ×layers) with the
// appropriate head.
func NewSequenceModel(kind HeadKind, in, hidden, layers int, seed int64) *SequenceModel {
	outDim := 2
	if kind == BinaryHead {
		outDim = 1
	}
	return &SequenceModel{
		Kind: kind,
		LSTM: NewLSTM(in, hidden, layers, seed),
		Head: NewDense(hidden, outDim, seed+997),
	}
}

// Params returns every learnable parameter.
func (m *SequenceModel) Params() []*Param {
	return append(m.LSTM.Params(), m.Head.Params()...)
}

// NumParams reports the total number of scalar parameters.
func (m *SequenceModel) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.W)
	}
	return n
}

// TrainSequence accumulates gradients for one (xs, ys) sequence and
// returns the mean per-step loss. mask[t]=false skips step t's loss (e.g.
// lost packets whose delay is unobserved); a nil mask trains on every
// step. Call opt.Step() afterwards to apply the update.
func (m *SequenceModel) TrainSequence(xs [][]float64, ys []float64, mask []bool) float64 {
	if len(xs) == 0 || len(xs) != len(ys) {
		return math.NaN()
	}
	outs, caches := m.LSTM.ForwardSequence(xs)
	dOut := make([][]float64, len(xs))
	total := 0.0
	counted := 0
	for t := range xs {
		dOut[t] = make([]float64, m.LSTM.Hidden())
		if mask != nil && !mask[t] {
			continue
		}
		headOut := m.Head.Forward(outs[t])
		var loss float64
		var dHead []float64
		if m.Kind == GaussianHead {
			loss, dHead = gaussianNLL(headOut, ys[t])
		} else {
			var dLogit float64
			loss, dLogit = bceLoss(headOut[0], ys[t])
			dHead = []float64{dLogit}
		}
		total += loss
		counted++
		dOut[t] = m.Head.Backward(outs[t], dHead)
	}
	if counted == 0 {
		return math.NaN()
	}
	// Normalize so the step size is invariant to sequence length.
	scale := 1 / float64(counted)
	for t := range dOut {
		for k := range dOut[t] {
			dOut[t][k] *= scale
		}
	}
	// The head gradients were accumulated unscaled; rescale them too.
	for _, p := range m.Head.Params() {
		for i := range p.Grad {
			p.Grad[i] *= scale
		}
	}
	m.LSTM.BackwardSequence(caches, dOut)
	return total * scale
}

// Predictor is a stateful inference handle over a trained SequenceModel,
// supporting the closed-loop unrolling of Fig 6 (predicted delays fed back
// as the next step's input by the caller).
type Predictor struct {
	model *SequenceModel
	state *State
}

// NewPredictor returns an inference handle with zero state.
func (m *SequenceModel) NewPredictor() *Predictor {
	return &Predictor{model: m, state: m.LSTM.NewState()}
}

// Reset zeroes the recurrent state.
func (p *Predictor) Reset() { p.state = p.model.LSTM.NewState() }

// StepGaussian advances one timestep and returns the predicted delay
// distribution. Valid only for GaussianHead models.
func (p *Predictor) StepGaussian(x []float64) GaussianOutput {
	var h []float64
	h, p.state = p.model.LSTM.Step(p.state, x)
	return gaussianFromHead(p.model.Head.Forward(h))
}

// StepProb advances one timestep and returns the predicted event
// probability. Valid only for BinaryHead models.
func (p *Predictor) StepProb(x []float64) float64 {
	var h []float64
	h, p.state = p.model.LSTM.Step(p.state, x)
	return sigmoid(p.model.Head.Forward(h)[0])
}

// PredictSequence runs Gaussian inference over a whole input sequence from
// a fresh state (open loop: the caller supplies all features).
func (m *SequenceModel) PredictSequence(xs [][]float64) []GaussianOutput {
	p := m.NewPredictor()
	out := make([]GaussianOutput, len(xs))
	for t, x := range xs {
		out[t] = p.StepGaussian(x)
	}
	return out
}
