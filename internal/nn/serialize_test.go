package nn

import (
	"encoding/json"
	"testing"
)

func TestSequenceModelJSONRoundTrip(t *testing.T) {
	m := NewSequenceModel(GaussianHead, 3, 5, 2, 7)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var got SequenceModel
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.NumParams() != m.NumParams() || got.Kind != m.Kind {
		t.Fatalf("architecture changed: %d vs %d params", got.NumParams(), m.NumParams())
	}
	// Identical outputs.
	xs := [][]float64{{0.1, -0.2, 0.3}, {0.5, 0.5, -0.5}}
	a := m.PredictSequence(xs)
	b := got.PredictSequence(xs)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSequenceModelUnmarshalRejectsCorrupt(t *testing.T) {
	var m SequenceModel
	if err := json.Unmarshal([]byte(`{"kind":0,"in":2,"hidden":3,"layers":1,"params":[[1,2]]}`), &m); err == nil {
		t.Error("wrong tensor count accepted")
	}
	if err := json.Unmarshal([]byte(`not json`), &m); err == nil {
		t.Error("garbage accepted")
	}
	good := NewSequenceModel(BinaryHead, 2, 3, 1, 0)
	data, _ := json.Marshal(good)
	// Truncate one tensor.
	var raw map[string]any
	json.Unmarshal(data, &raw)
	params := raw["params"].([]any)
	params[0] = []any{1.0}
	broken, _ := json.Marshal(raw)
	if err := json.Unmarshal(broken, &m); err == nil {
		t.Error("wrong tensor size accepted")
	}
}
