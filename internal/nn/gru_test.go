package nn

import (
	"math"
	"testing"

	"ibox/internal/sim"
)

func TestGRUStepShapes(t *testing.T) {
	m := NewGRU(3, 5, 2, 1)
	s := m.NewState()
	x := []float64{0.1, -0.2, 0.3}
	h1, s1 := m.Step(s, x)
	if len(h1) != 5 {
		t.Fatalf("output size %d", len(h1))
	}
	h2, _ := m.Step(s, x)
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("Step mutated its input state")
		}
	}
	h3, _ := m.Step(s1, x)
	same := true
	for i := range h1 {
		if h1[i] != h3[i] {
			same = false
		}
	}
	if same {
		t.Error("state had no effect")
	}
}

// TestGRUGradCheck verifies the full BPTT gradient of a 2-layer GRU with a
// squared-error head against finite differences.
func TestGRUGradCheck(t *testing.T) {
	g := NewGRU(2, 3, 2, 5)
	head := NewDense(3, 1, 6)
	params := append(g.Params(), head.Params()...)
	xs := [][]float64{{0.5, -0.1}, {0.2, 0.8}, {-0.7, 0.3}, {0.4, -0.4}}
	ys := []float64{0.3, -0.2, 0.5, 0.1}
	loss := func() float64 {
		outs, _ := g.ForwardSequence(xs)
		total := 0.0
		for t := range xs {
			d := head.Forward(outs[t])[0] - ys[t]
			total += 0.5 * d * d
		}
		return total
	}
	compute := func() float64 {
		outs, caches := g.ForwardSequence(xs)
		dOut := make([][]float64, len(xs))
		for t := range xs {
			d := head.Forward(outs[t])[0] - ys[t]
			dOut[t] = head.Backward(outs[t], []float64{d})
		}
		g.BackwardSequence(caches, dOut)
		return loss()
	}
	gradCheck(t, params, compute, loss)
}

func TestGRULearnsMemoryTask(t *testing.T) {
	// Same synthetic y_t = 0.8·x_t + 0.5·x_{t−1} task as the LSTM test.
	g := NewGRU(1, 8, 1, 7)
	head := NewDense(8, 1, 8)
	params := append(g.Params(), head.Params()...)
	opt := NewAdam(0.01, params)
	rng := sim.NewRand(11, 0)
	var last float64
	for epoch := 0; epoch < 300; epoch++ {
		T := 30
		xs := make([][]float64, T)
		ys := make([]float64, T)
		prev := 0.0
		for tt := 0; tt < T; tt++ {
			x := rng.Float64()*2 - 1
			xs[tt] = []float64{x}
			ys[tt] = 0.8*x + 0.5*prev
			prev = x
		}
		outs, caches := g.ForwardSequence(xs)
		dOut := make([][]float64, T)
		total := 0.0
		for tt := range xs {
			d := head.Forward(outs[tt])[0] - ys[tt]
			total += 0.5 * d * d
			dOut[tt] = head.Backward(outs[tt], []float64{d / float64(T)})
		}
		g.BackwardSequence(caches, dOut)
		opt.Step()
		last = total / float64(T)
	}
	if last > 0.01 {
		t.Errorf("final MSE = %.4f, GRU failed to learn", last)
	}
}

func TestGRUPanicsOnZeroLayers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for 0 layers")
		}
	}()
	NewGRU(1, 4, 0, 0)
}

func TestGRUParamCount(t *testing.T) {
	g := NewGRU(4, 8, 2, 0)
	n := 0
	for _, p := range g.Params() {
		n += len(p.W)
	}
	// Layer 1: 3·8·4 + 3·8·8 + 3·8 = 96+192+24 = 312
	// Layer 2: 3·8·8 + 3·8·8 + 24 = 192+192+24 = 408
	if n != 312+408 {
		t.Errorf("param count %d, want %d", n, 312+408)
	}
	if g.Hidden() != 8 {
		t.Errorf("Hidden() = %d", g.Hidden())
	}
}

func TestGRUCheaperThanLSTM(t *testing.T) {
	lstm := NewLSTM(4, 16, 2, 0)
	gru := NewGRU(4, 16, 2, 0)
	count := func(ps []*Param) int {
		n := 0
		for _, p := range ps {
			n += len(p.W)
		}
		return n
	}
	if count(gru.Params()) >= count(lstm.Params()) {
		t.Error("GRU should have fewer parameters than an equal-size LSTM")
	}
	if math.Abs(float64(count(gru.Params()))/float64(count(lstm.Params()))-0.75) > 0.01 {
		t.Errorf("GRU/LSTM param ratio %.3f, want 0.75", float64(count(gru.Params()))/float64(count(lstm.Params())))
	}
}
