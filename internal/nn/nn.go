// Package nn is a from-scratch neural-network substrate (stdlib only) that
// provides exactly what iBoxML (§4) needs: multi-layer LSTMs trained by
// truncated back-propagation through time, dense output heads with a
// Gaussian negative-log-likelihood loss (the paper's N(w₁ᵀh, w₂ᵀh) delay
// distribution) or binary cross-entropy (the reordering predictor of
// §5.1), the Adam optimizer, and a standalone logistic-regression model
// (the paper's "lightweight and much faster linear" reordering predictor).
//
// Everything is deterministic given a seed, and all gradients are verified
// against finite differences in the package tests.
package nn

import (
	"math"

	"ibox/internal/sim"
)

// Param is one learnable tensor with its gradient and Adam moments.
type Param struct {
	W    []float64
	Grad []float64
	m, v []float64
}

func newParam(n int) *Param {
	return &Param{W: make([]float64, n), Grad: make([]float64, n), m: make([]float64, n), v: make([]float64, n)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2015) over a set of parameters.
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	ClipNorm float64 // global gradient-norm clip; 0 disables
	t        int
	params   []*Param
}

// NewAdam returns an optimizer over params with standard betas.
func NewAdam(lr float64, params []*Param) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, ClipNorm: 5, params: params}
}

// Step applies one update from the accumulated gradients, then clears
// them. It returns the global (pre-clip) L2 gradient norm, which training
// loops record as a divergence diagnostic; callers that don't need it can
// ignore the value.
func (a *Adam) Step() float64 {
	a.t++
	norm := 0.0
	for _, p := range a.params {
		for _, g := range p.Grad {
			norm += g * g
		}
	}
	norm = math.Sqrt(norm)
	if a.ClipNorm > 0 && norm > a.ClipNorm {
		scale := a.ClipNorm / norm
		for _, p := range a.params {
			for i := range p.Grad {
				p.Grad[i] *= scale
			}
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range a.params {
		for i, g := range p.Grad {
			p.m[i] = a.Beta1*p.m[i] + (1-a.Beta1)*g
			p.v[i] = a.Beta2*p.v[i] + (1-a.Beta2)*g*g
			mh := p.m[i] / bc1
			vh := p.v[i] / bc2
			p.W[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
	return norm
}

// Dense is a fully connected layer y = W·x + b.
type Dense struct {
	In, Out int
	W       *Param // Out×In, row-major
	B       *Param // Out
}

// NewDense returns a dense layer with Xavier-uniform initialization.
func NewDense(in, out int, seed int64) *Dense {
	d := &Dense{In: in, Out: out, W: newParam(in * out), B: newParam(out)}
	rng := sim.NewRand(seed, 101)
	bound := math.Sqrt(6.0 / float64(in+out))
	for i := range d.W.W {
		d.W.W[i] = (rng.Float64()*2 - 1) * bound
	}
	return d
}

// Forward computes the layer output for input x.
func (d *Dense) Forward(x []float64) []float64 {
	y := make([]float64, d.Out)
	d.ForwardInto(x, y)
	return y
}

// ForwardInto computes the layer output into dst (length Out) without
// allocating. Identical arithmetic to Forward.
func (d *Dense) ForwardInto(x, dst []float64) {
	for o := 0; o < d.Out; o++ {
		s := d.B.W[o]
		row := d.W.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			s += row[i] * xi
		}
		dst[o] = s
	}
}

// Backward accumulates parameter gradients for output gradient dy at input
// x, and returns the gradient with respect to x.
func (d *Dense) Backward(x, dy []float64) []float64 {
	dx := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := dy[o]
		d.B.Grad[o] += g
		row := d.W.W[o*d.In : (o+1)*d.In]
		grow := d.W.Grad[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			grow[i] += g * xi
			dx[i] += g * row[i]
		}
	}
	return dx
}

// Params returns the layer's learnable parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
