//go:build amd64

package nn

// SIMD backend selection for the gate pre-activation kernel. The AVX2
// path maps each hidden unit's four interleaved gate rows onto the four
// lanes of a ymm register: lane g runs gate row g's accumulator chain
// with a separate vector multiply and vector add per column (no FMA —
// fused multiply-add rounds once where the scalar chain rounds twice, so
// it would break the bitwise contract). Per-lane arithmetic is therefore
// the exact scalar operation sequence, and SIMD on/off cannot change any
// result bit.
//
// AVX2 support is detected at startup via CPUID/XGETBV rather than build
// tags: GOAMD64=v1 binaries must still run on pre-AVX2 machines, where
// gatePreScalar covers every unit.

var haveSIMD = cpuHasAVX2()

// layerPreSIMD computes gate pre-activations for groups*4 hidden units:
// out[j*4+g] = init + Σ_{k=xoff}^{nx-1} Wx[row(j,g)][k]·x[k]
//   - Σ_{k=0}^{nh-1}    Wh[row(j,g)][k]·h[k]
//
// where init is pre[j*4+g] when pre is non-nil and the packed bias
// otherwise. blocks points at InferLayer.packed (unit-interleaved layout,
// blkBytes bytes per unit block); x is never dereferenced when
// xoff == nx, but must be a valid pointer.
//
//go:noescape
func layerPreSIMD(blocks, x, h, pre, out *float64, nx, nh, groups, xoff, blkBytes int64)

// cpuHasAVX2 reports whether the CPU and OS support AVX2 (CPUID AVX2 +
// OSXSAVE with XMM/YMM state enabled in XCR0).
func cpuHasAVX2() bool
