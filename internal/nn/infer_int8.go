package nn

import "math"

// Opt-in int8 weight quantization for the inference kernel. Each gate
// row's Wx and Wh are quantized separately to int8 with a symmetric
// per-row scale (scale = maxAbs/127); the step dequantizes on the fly:
//
//	pre = b + sx·Σ float64(qx[k])·x[k] + sh·Σ float64(qh[k])·h[k]
//
// On this scalar CPU path the win is footprint, not arithmetic: the
// paper-scale stack (Hidden 256, 4 layers, ~2M params) shrinks from
// ~16 MB of float64 weights to ~2 MB, which fits in L2 instead of
// streaming from memory every step.
//
// NOT bitwise-identical to the float kernels — quantization rounds every
// weight and reassociates each dot product through the scale factor. It
// is off by default everywhere; callers opt in via LSTM.CompileQuantized
// (or iboxml's Model option) and are expected to re-check fidelity
// (iboxml.Calibrate) on their own data. Window pre-projection is not
// supported on this path.
type quantLayer struct {
	in, hidden int
	rowStride  int    // in + hidden, per gate row
	w          []int8 // 4*hidden rows, unit-major: [qx | qh] per row
	b          []float64
	scaleX     []float64 // per row
	scaleH     []float64 // per row
}

// CompileQuantized repacks the stack like Compile but stores Wx/Wh as
// int8 with per-row scales. See the quantLayer doc for the accuracy and
// identity caveats.
func (m *LSTM) CompileQuantized() *InferModel {
	im := m.Compile()
	for _, il := range im.Layers {
		il.q = quantizeLayer(il)
	}
	return im
}

func quantizeLayer(il *InferLayer) *quantLayer {
	In, H, bs := il.In, il.Hidden, il.blkStride
	q := &quantLayer{
		in:        In,
		hidden:    H,
		rowStride: In + H,
		w:         make([]int8, 4*H*(In+H)),
		b:         make([]float64, 4*H),
		scaleX:    make([]float64, 4*H),
		scaleH:    make([]float64, 4*H),
	}
	// De-interleave each gate row out of the unit-interleaved packed
	// layout before quantizing it.
	rowX := make([]float64, In)
	rowH := make([]float64, H)
	for j := 0; j < H; j++ {
		blk := il.packed[j*bs : (j+1)*bs]
		for g := 0; g < 4; g++ {
			r := j*4 + g
			q.b[r] = blk[g]
			for k := 0; k < In; k++ {
				rowX[k] = blk[4+k*4+g]
			}
			for k := 0; k < H; k++ {
				rowH[k] = blk[4+In*4+k*4+g]
			}
			q.scaleX[r] = quantizeRow(q.w[r*q.rowStride:r*q.rowStride+In], rowX)
			q.scaleH[r] = quantizeRow(q.w[r*q.rowStride+In:(r+1)*q.rowStride], rowH)
		}
	}
	return q
}

// quantizeRow fills dst with round(src/scale) for scale = maxAbs/127 and
// returns the scale (0 for an all-zero row, leaving dst zeroed).
func quantizeRow(dst []int8, src []float64) float64 {
	maxAbs := 0.0
	for _, v := range src {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	scale := maxAbs / 127
	for i, v := range src {
		dst[i] = int8(math.RoundToEven(v / scale))
	}
	return scale
}

// step is the quantized analogue of InferLayer.step (no pre-projection
// variant). c updates in place; hNew must not alias hPrev.
func (q *quantLayer) step(hPrev, c, hNew, x []float64) {
	In, rs := q.in, q.rowStride
	for j := 0; j < q.hidden; j++ {
		var acc [4]float64
		for g := 0; g < 4; g++ {
			r := j*4 + g
			row := q.w[r*rs : (r+1)*rs]
			var sx, sh float64
			for k := 0; k < In; k++ {
				sx += float64(row[k]) * x[k]
			}
			qh := row[In:]
			for k, hv := range hPrev {
				sh += float64(qh[k]) * hv
			}
			acc[g] = q.b[r] + q.scaleX[r]*sx + q.scaleH[r]*sh
		}
		ig := sigmoid(acc[0])
		fg := sigmoid(acc[1])
		gg := math.Tanh(acc[2])
		og := sigmoid(acc[3])
		cj := fg*c[j] + ig*gg
		c[j] = cj
		hNew[j] = og * math.Tanh(cj)
	}
}
