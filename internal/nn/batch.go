package nn

import "math"

// Batched inference: advance several independent recurrent states one
// timestep each through the *same* weight stack. This is the kernel behind
// request micro-batching in the serving layer (internal/serve): per step
// the weights are streamed once for the whole batch instead of once per
// request, and the B dot-product accumulator chains are interleaved, so
// the matvec becomes throughput-bound instead of latency-bound.
//
// Correctness contract: for every member b, the arithmetic is the exact
// operation sequence of the unbatched path — per gate row the bias is
// loaded first, then the input terms accumulate in ascending k, then the
// recurrent terms in ascending k — so batched and unbatched inference
// produce bitwise-identical floats. The serving determinism tests assert
// this end to end; TestStepBatchMatchesStep asserts it per step.

// StepBatch advances n independent states one timestep each, where
// states[b] is fed input xs[b]. It returns the top-layer hidden vector
// and the new state per member; input states are not modified. Results
// are bitwise identical to calling Step on each (state, x) pair.
//
// Unlike Step, StepBatch allocates no BPTT caches, so it is also the
// preferred single-member inference step for hot serving paths (n = 1 is
// valid).
func (m *LSTM) StepBatch(states []*State, xs [][]float64) ([][]float64, []*State) {
	n := len(states)
	if n != len(xs) {
		panic("nn: StepBatch states/inputs length mismatch")
	}
	if n == 0 {
		return nil, nil
	}
	L := len(m.Layers)
	ns := make([]*State, n)
	for b := 0; b < n; b++ {
		ns[b] = &State{h: make([][]float64, L), c: make([][]float64, L)}
	}
	ins := xs
	// pre[b] holds member b's 4H gate pre-activations for the current
	// layer; reused across layers.
	pre := make([][]float64, n)
	hPrev := make([][]float64, n)
	for li, l := range m.Layers {
		H := l.Hidden
		for b := 0; b < n; b++ {
			if len(pre[b]) < 4*H {
				pre[b] = make([]float64, 4*H)
			}
			hPrev[b] = states[b].h[li]
		}
		// Gate pre-activations, weight-row outer / member blocks of four
		// inner: each scalar of Wx and Wh is loaded once per block instead
		// of once per member, and the four accumulator chains live in
		// registers, so the dot products are throughput- rather than
		// latency-bound. Per member the operation order is identical to
		// LSTMLayer.step — bias first, then the input terms in ascending k,
		// then the recurrent terms in ascending k — so the result is
		// bitwise equal to the unbatched step.
		for b := 0; b+4 <= n; b += 4 {
			x0, x1, x2, x3 := ins[b], ins[b+1], ins[b+2], ins[b+3]
			h0, h1, h2, h3 := hPrev[b], hPrev[b+1], hPrev[b+2], hPrev[b+3]
			p0, p1, p2, p3 := pre[b], pre[b+1], pre[b+2], pre[b+3]
			for j := 0; j < 4*H; j++ {
				bj := l.B.W[j]
				a0, a1, a2, a3 := bj, bj, bj, bj
				rx := l.Wx.W[j*l.In : (j+1)*l.In]
				for k, w := range rx {
					a0 += w * x0[k]
					a1 += w * x1[k]
					a2 += w * x2[k]
					a3 += w * x3[k]
				}
				rh := l.Wh.W[j*H : (j+1)*H]
				for k, w := range rh {
					a0 += w * h0[k]
					a1 += w * h1[k]
					a2 += w * h2[k]
					a3 += w * h3[k]
				}
				p0[j], p1[j], p2[j], p3[j] = a0, a1, a2, a3
			}
		}
		// Remainder members (n mod 4), one at a time.
		for b := n - n%4; b < n; b++ {
			x, hp, p := ins[b], hPrev[b], pre[b]
			for j := 0; j < 4*H; j++ {
				s := l.B.W[j]
				rx := l.Wx.W[j*l.In : (j+1)*l.In]
				for k, w := range rx {
					s += w * x[k]
				}
				rh := l.Wh.W[j*H : (j+1)*H]
				for k, w := range rh {
					s += w * hp[k]
				}
				p[j] = s
			}
		}
		outs := make([][]float64, n)
		for b := 0; b < n; b++ {
			p := pre[b]
			cp := states[b].c[li]
			h := make([]float64, H)
			c := make([]float64, H)
			for j := 0; j < H; j++ {
				ig := sigmoid(p[j])
				fg := sigmoid(p[H+j])
				gg := math.Tanh(p[2*H+j])
				og := sigmoid(p[3*H+j])
				c[j] = fg*cp[j] + ig*gg
				h[j] = og * math.Tanh(c[j])
			}
			ns[b].h[li] = h
			ns[b].c[li] = c
			outs[b] = h
		}
		ins = outs
	}
	return ins, ns
}

// StepGaussianBatch advances several Predictors — which must all wrap the
// same SequenceModel — one timestep each, feeding xs[b] to ps[b], and
// returns the predicted delay distribution per member. Each predictor's
// recurrent state advances exactly as StepGaussian would have advanced
// it: outputs are bitwise identical to the unbatched path regardless of
// batch composition or order.
func StepGaussianBatch(ps []*Predictor, xs [][]float64) []GaussianOutput {
	if len(ps) == 0 {
		return nil
	}
	if len(ps) != len(xs) {
		panic("nn: StepGaussianBatch predictors/inputs length mismatch")
	}
	model, im := ps[0].model, ps[0].im
	sts := make([]*InferState, len(ps))
	for i, p := range ps {
		if p.model != model || p.im != im {
			panic("nn: StepGaussianBatch predictors span different models")
		}
		sts[i] = p.st
	}
	im.StepBatchInto(sts, xs, nil, 0)
	out := make([]GaussianOutput, len(ps))
	for i, p := range ps {
		model.Head.ForwardInto(sts[i].top(), p.head)
		out[i] = gaussianFromHead(p.head)
	}
	return out
}
