package nn

import (
	"math"

	"ibox/internal/sim"
)

// GRULayer is one Gated Recurrent Unit layer (Cho et al. 2014):
//
//	z = σ(Wx_z·x + Wh_z·h + b_z)        (update gate)
//	r = σ(Wx_r·x + Wh_r·h + b_r)        (reset gate)
//	n = tanh(Wx_n·x + r⊙(Wh_n·h) + b_n) (candidate)
//	h' = (1−z)⊙n + z⊙h
//
// GRUs are the cheaper cousin of LSTMs (3 gates instead of 4, no cell
// state); the §4.2 speed discussion motivates exploring cheaper recurrent
// models, and BenchmarkAblationCellKind compares the two.
// Gates are packed z|r|n.
type GRULayer struct {
	In, Hidden int
	Wx         *Param // 3H×In
	Wh         *Param // 3H×H
	B          *Param // 3H
}

// NewGRULayer returns a layer with Xavier-uniform weights.
func NewGRULayer(in, hidden int, seed int64) *GRULayer {
	l := &GRULayer{
		In: in, Hidden: hidden,
		Wx: newParam(3 * hidden * in),
		Wh: newParam(3 * hidden * hidden),
		B:  newParam(3 * hidden),
	}
	rng := sim.NewRand(seed, 303)
	bx := math.Sqrt(6.0 / float64(in+hidden))
	for i := range l.Wx.W {
		l.Wx.W[i] = (rng.Float64()*2 - 1) * bx
	}
	bh := math.Sqrt(6.0 / float64(2*hidden))
	for i := range l.Wh.W {
		l.Wh.W[i] = (rng.Float64()*2 - 1) * bh
	}
	return l
}

// Params returns the layer's learnable parameters.
func (l *GRULayer) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// gruCache stores one timestep's activations for BPTT.
type gruCache struct {
	x, hPrev []float64
	z, r, n  []float64
	hhN      []float64 // Wh_n·hPrev (pre reset gating), needed for backward
	h        []float64
}

// step computes one forward step.
func (l *GRULayer) step(x, hPrev []float64) *gruCache {
	H := l.Hidden
	pre := make([]float64, 3*H)
	for j := 0; j < 3*H; j++ {
		s := l.B.W[j]
		rx := l.Wx.W[j*l.In : (j+1)*l.In]
		for k, xv := range x {
			s += rx[k] * xv
		}
		pre[j] = s
	}
	// Recurrent contributions: z and r gates add Wh·h directly; n's
	// recurrent term is gated by r, so keep it separate.
	cache := &gruCache{
		x: x, hPrev: hPrev,
		z: make([]float64, H), r: make([]float64, H), n: make([]float64, H),
		hhN: make([]float64, H), h: make([]float64, H),
	}
	for j := 0; j < 2*H; j++ {
		rh := l.Wh.W[j*H : (j+1)*H]
		s := 0.0
		for k, hv := range hPrev {
			s += rh[k] * hv
		}
		pre[j] += s
	}
	for j := 0; j < H; j++ {
		rh := l.Wh.W[(2*H+j)*H : (2*H+j+1)*H]
		s := 0.0
		for k, hv := range hPrev {
			s += rh[k] * hv
		}
		cache.hhN[j] = s
	}
	for j := 0; j < H; j++ {
		cache.z[j] = sigmoid(pre[j])
		cache.r[j] = sigmoid(pre[H+j])
		cache.n[j] = math.Tanh(pre[2*H+j] + cache.r[j]*cache.hhN[j])
		cache.h[j] = (1-cache.z[j])*cache.n[j] + cache.z[j]*hPrev[j]
	}
	return cache
}

// stepBackward accumulates gradients for one timestep given dh flowing
// into h'; it returns gradients for x and hPrev.
func (l *GRULayer) stepBackward(cache *gruCache, dh []float64) (dx, dhPrev []float64) {
	H := l.Hidden
	dPre := make([]float64, 3*H) // gradients at the gate pre-activations
	dhPrev = make([]float64, H)
	for j := 0; j < H; j++ {
		dz := dh[j] * (cache.hPrev[j] - cache.n[j])
		dn := dh[j] * (1 - cache.z[j])
		dhPrev[j] += dh[j] * cache.z[j]
		dnPre := dn * (1 - cache.n[j]*cache.n[j])
		dr := dnPre * cache.hhN[j]
		// n's recurrent term r⊙(Wh_n·hPrev): gradient into Wh_n·hPrev.
		dHhN := dnPre * cache.r[j]
		dPre[j] = dz * cache.z[j] * (1 - cache.z[j])
		dPre[H+j] = dr * cache.r[j] * (1 - cache.r[j])
		dPre[2*H+j] = dnPre
		// Backprop dHhN through Wh_n.
		rh := l.Wh.W[(2*H+j)*H : (2*H+j+1)*H]
		gh := l.Wh.Grad[(2*H+j)*H : (2*H+j+1)*H]
		for k, hv := range cache.hPrev {
			gh[k] += dHhN * hv
			dhPrev[k] += dHhN * rh[k]
		}
	}
	dx = make([]float64, l.In)
	for j := 0; j < 3*H; j++ {
		g := dPre[j]
		if g == 0 {
			continue
		}
		l.B.Grad[j] += g
		rx := l.Wx.W[j*l.In : (j+1)*l.In]
		gx := l.Wx.Grad[j*l.In : (j+1)*l.In]
		for k, xv := range cache.x {
			gx[k] += g * xv
			dx[k] += g * rx[k]
		}
		if j < 2*H { // z and r gates have direct recurrent weights
			rh := l.Wh.W[j*H : (j+1)*H]
			gh := l.Wh.Grad[j*H : (j+1)*H]
			for k, hv := range cache.hPrev {
				gh[k] += g * hv
				dhPrev[k] += g * rh[k]
			}
		}
	}
	return dx, dhPrev
}

// GRU is a stack of GRU layers, with the same sequence API as LSTM.
type GRU struct {
	Layers []*GRULayer
}

// NewGRU builds a stack: the first layer maps in→hidden, the rest
// hidden→hidden.
func NewGRU(in, hidden, layers int, seed int64) *GRU {
	if layers < 1 {
		panic("nn: GRU needs at least one layer")
	}
	m := &GRU{}
	for l := 0; l < layers; l++ {
		szIn := hidden
		if l == 0 {
			szIn = in
		}
		m.Layers = append(m.Layers, NewGRULayer(szIn, hidden, seed+int64(l)*37))
	}
	return m
}

// Params returns all learnable parameters of the stack.
func (m *GRU) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Hidden returns the stack's hidden size.
func (m *GRU) Hidden() int { return m.Layers[0].Hidden }

// GRUState is the recurrent state (h per layer).
type GRUState struct {
	h [][]float64
}

// NewState returns a zero state.
func (m *GRU) NewState() *GRUState {
	s := &GRUState{}
	for _, l := range m.Layers {
		s.h = append(s.h, make([]float64, l.Hidden))
	}
	return s
}

// Step advances one timestep, returning the top hidden vector and the new
// state; the input state is not modified.
func (m *GRU) Step(s *GRUState, x []float64) ([]float64, *GRUState) {
	ns := &GRUState{}
	in := x
	for li, l := range m.Layers {
		cache := l.step(in, s.h[li])
		ns.h = append(ns.h, cache.h)
		in = cache.h
	}
	return in, ns
}

// ForwardSequence runs the stack over a sequence from a zero state.
func (m *GRU) ForwardSequence(xs [][]float64) ([][]float64, [][]*gruCache) {
	state := m.NewState()
	outs := make([][]float64, len(xs))
	caches := make([][]*gruCache, len(xs))
	for t, x := range xs {
		caches[t] = make([]*gruCache, len(m.Layers))
		in := x
		ns := &GRUState{}
		for li, l := range m.Layers {
			cache := l.step(in, state.h[li])
			caches[t][li] = cache
			ns.h = append(ns.h, cache.h)
			in = cache.h
		}
		state = ns
		outs[t] = in
	}
	return outs, caches
}

// BackwardSequence back-propagates through time; dOut[t] is the gradient
// at the top hidden output of step t. Returns per-step input gradients.
func (m *GRU) BackwardSequence(caches [][]*gruCache, dOut [][]float64) [][]float64 {
	L := len(m.Layers)
	T := len(caches)
	dxs := make([][]float64, T)
	dh := make([][]float64, L)
	for li, l := range m.Layers {
		dh[li] = make([]float64, l.Hidden)
	}
	for t := T - 1; t >= 0; t-- {
		carry := dOut[t]
		for li := L - 1; li >= 0; li-- {
			dhTotal := make([]float64, m.Layers[li].Hidden)
			copy(dhTotal, dh[li])
			for k := range carry {
				dhTotal[k] += carry[k]
			}
			dx, dhPrev := m.Layers[li].stepBackward(caches[t][li], dhTotal)
			dh[li] = dhPrev
			carry = dx
		}
		dxs[t] = carry
	}
	return dxs
}
