package nn

import (
	"math"

	"ibox/internal/sim"
)

// LSTMLayer is one LSTM layer with the standard gate formulation
//
//	i = σ(Wx_i·x + Wh_i·h + b_i)    f = σ(Wx_f·x + Wh_f·h + b_f)
//	g = tanh(Wx_g·x + Wh_g·h + b_g) o = σ(Wx_o·x + Wh_o·h + b_o)
//	c' = f⊙c + i⊙g                  h' = o⊙tanh(c')
//
// The four gates are packed in i|f|g|o order. The forget-gate bias is
// initialized to 1 (the standard trick for gradient flow over long
// sequences).
type LSTMLayer struct {
	In, Hidden int
	Wx         *Param // 4H×In
	Wh         *Param // 4H×H
	B          *Param // 4H
}

// NewLSTMLayer returns a layer with Xavier-uniform weights.
func NewLSTMLayer(in, hidden int, seed int64) *LSTMLayer {
	l := &LSTMLayer{
		In: in, Hidden: hidden,
		Wx: newParam(4 * hidden * in),
		Wh: newParam(4 * hidden * hidden),
		B:  newParam(4 * hidden),
	}
	rng := sim.NewRand(seed, 202)
	bx := math.Sqrt(6.0 / float64(in+hidden))
	for i := range l.Wx.W {
		l.Wx.W[i] = (rng.Float64()*2 - 1) * bx
	}
	bh := math.Sqrt(6.0 / float64(2*hidden))
	for i := range l.Wh.W {
		l.Wh.W[i] = (rng.Float64()*2 - 1) * bh
	}
	for j := hidden; j < 2*hidden; j++ {
		l.B.W[j] = 1 // forget gate bias
	}
	return l
}

// Params returns the layer's learnable parameters.
func (l *LSTMLayer) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// lstmCache stores one timestep's activations for BPTT.
type lstmCache struct {
	x, hPrev, cPrev []float64
	i, f, g, o      []float64
	c, tanhC, h     []float64
}

// attach carves the cache's seven activation vectors out of slab (length
// at least 7*H). ForwardSequence allocates one slab per layer for the
// whole sequence instead of seven small slices per step.
func (c *lstmCache) attach(slab []float64, H int) {
	c.i, slab = slab[:H:H], slab[H:]
	c.f, slab = slab[:H:H], slab[H:]
	c.g, slab = slab[:H:H], slab[H:]
	c.o, slab = slab[:H:H], slab[H:]
	c.c, slab = slab[:H:H], slab[H:]
	c.tanhC, slab = slab[:H:H], slab[H:]
	c.h = slab[:H:H]
}

// step computes one forward step into cache (whose activation vectors
// must already be attached). pre is caller scratch of at least 4*Hidden;
// the cache retains x, hPrev and cPrev by reference.
func (l *LSTMLayer) step(x, hPrev, cPrev, pre []float64, cache *lstmCache) {
	H := l.Hidden
	for j := 0; j < 4*H; j++ {
		s := l.B.W[j]
		rx := l.Wx.W[j*l.In : (j+1)*l.In]
		for k, xv := range x {
			s += rx[k] * xv
		}
		rh := l.Wh.W[j*H : (j+1)*H]
		for k, hv := range hPrev {
			s += rh[k] * hv
		}
		pre[j] = s
	}
	cache.x, cache.hPrev, cache.cPrev = x, hPrev, cPrev
	for j := 0; j < H; j++ {
		cache.i[j] = sigmoid(pre[j])
		cache.f[j] = sigmoid(pre[H+j])
		cache.g[j] = math.Tanh(pre[2*H+j])
		cache.o[j] = sigmoid(pre[3*H+j])
		cache.c[j] = cache.f[j]*cPrev[j] + cache.i[j]*cache.g[j]
		cache.tanhC[j] = math.Tanh(cache.c[j])
		cache.h[j] = cache.o[j] * cache.tanhC[j]
	}
}

// stepBackward accumulates gradients for one timestep. dh and dc are the
// gradients flowing into this step's h and c outputs; dx, dhPrev and
// dcPrev receive the gradients for x, hPrev and cPrev (dx and dhPrev are
// zeroed here first; dcPrev may alias dc — every element is read before
// it is overwritten). dPre is caller scratch of at least 4*Hidden. The
// arithmetic and accumulation order are exactly the historical
// allocate-per-step version's, so training remains byte-identical.
func (l *LSTMLayer) stepBackward(cache *lstmCache, dh, dc, dPre, dx, dhPrev, dcPrev []float64) {
	H := l.Hidden
	for j := 0; j < H; j++ {
		do := dh[j] * cache.tanhC[j]
		dcj := dc[j] + dh[j]*cache.o[j]*(1-cache.tanhC[j]*cache.tanhC[j])
		di := dcj * cache.g[j]
		df := dcj * cache.cPrev[j]
		dg := dcj * cache.i[j]
		dcPrev[j] = dcj * cache.f[j]
		dPre[j] = di * cache.i[j] * (1 - cache.i[j])
		dPre[H+j] = df * cache.f[j] * (1 - cache.f[j])
		dPre[2*H+j] = dg * (1 - cache.g[j]*cache.g[j])
		dPre[3*H+j] = do * cache.o[j] * (1 - cache.o[j])
	}
	for k := range dx {
		dx[k] = 0
	}
	for k := range dhPrev {
		dhPrev[k] = 0
	}
	for j := 0; j < 4*H; j++ {
		g := dPre[j]
		if g == 0 {
			continue
		}
		l.B.Grad[j] += g
		rx := l.Wx.W[j*l.In : (j+1)*l.In]
		gx := l.Wx.Grad[j*l.In : (j+1)*l.In]
		for k, xv := range cache.x {
			gx[k] += g * xv
			dx[k] += g * rx[k]
		}
		rh := l.Wh.W[j*H : (j+1)*H]
		gh := l.Wh.Grad[j*H : (j+1)*H]
		for k, hv := range cache.hPrev {
			gh[k] += g * hv
			dhPrev[k] += g * rh[k]
		}
	}
}

// LSTM is a stack of LSTM layers (Fig 6's multi-layer state encoder).
type LSTM struct {
	Layers []*LSTMLayer
}

// NewLSTM builds a stack: the first layer maps in→hidden, the rest
// hidden→hidden.
func NewLSTM(in, hidden, layers int, seed int64) *LSTM {
	if layers < 1 {
		panic("nn: LSTM needs at least one layer")
	}
	m := &LSTM{}
	for l := 0; l < layers; l++ {
		szIn := hidden
		if l == 0 {
			szIn = in
		}
		m.Layers = append(m.Layers, NewLSTMLayer(szIn, hidden, seed+int64(l)*31))
	}
	return m
}

// Params returns all learnable parameters of the stack.
func (m *LSTM) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Hidden returns the stack's hidden size.
func (m *LSTM) Hidden() int { return m.Layers[0].Hidden }

// State is the recurrent state (h, c per layer) of an LSTM stack.
type State struct {
	h, c [][]float64
}

// NewState returns a zero state for the stack.
func (m *LSTM) NewState() *State {
	s := &State{}
	for _, l := range m.Layers {
		s.h = append(s.h, make([]float64, l.Hidden))
		s.c = append(s.c, make([]float64, l.Hidden))
	}
	return s
}

// Step advances the stack one timestep from state s, returning the top
// layer's hidden vector and the new state. The input state is not
// modified.
func (m *LSTM) Step(s *State, x []float64) ([]float64, *State) {
	out, ns, _ := m.stepCached(s, x)
	return out, ns
}

func (m *LSTM) stepCached(s *State, x []float64) ([]float64, *State, []*lstmCache) {
	ns := &State{}
	caches := make([]*lstmCache, len(m.Layers))
	in := x
	for li, l := range m.Layers {
		cache := &lstmCache{}
		cache.attach(make([]float64, 7*l.Hidden), l.Hidden)
		l.step(in, s.h[li], s.c[li], make([]float64, 4*l.Hidden), cache)
		caches[li] = cache
		ns.h = append(ns.h, cache.h)
		ns.c = append(ns.c, cache.c)
		in = cache.h
	}
	return in, ns, caches
}

// maxHidden returns the widest layer's hidden size.
func (m *LSTM) maxHidden() int {
	maxH := 0
	for _, l := range m.Layers {
		if l.Hidden > maxH {
			maxH = l.Hidden
		}
	}
	return maxH
}

// ForwardSequence runs the stack over a sequence from a zero state and
// returns the top-layer hidden vector at every timestep plus the caches
// needed by BackwardSequence. Scratch is allocated per sequence, not per
// step: one activation slab per layer and one shared pre-activation
// buffer, so a T-step forward costs O(layers) allocations instead of
// O(T·layers) — the arithmetic is unchanged, so training stays
// byte-identical.
func (m *LSTM) ForwardSequence(xs [][]float64) ([][]float64, [][]*lstmCache) {
	T := len(xs)
	L := len(m.Layers)
	outs := make([][]float64, T)
	caches := make([][]*lstmCache, T)
	structs := make([]lstmCache, T*L)
	for t := range caches {
		caches[t] = make([]*lstmCache, L)
		for li := range caches[t] {
			caches[t][li] = &structs[t*L+li]
		}
	}
	for li, l := range m.Layers {
		H := l.Hidden
		slab := make([]float64, T*7*H)
		for t := 0; t < T; t++ {
			caches[t][li].attach(slab[t*7*H:(t+1)*7*H], H)
		}
	}
	pre := make([]float64, 4*m.maxHidden())
	state := m.NewState()
	for t, x := range xs {
		in := x
		for li, l := range m.Layers {
			c := caches[t][li]
			l.step(in, state.h[li], state.c[li], pre, c)
			state.h[li], state.c[li] = c.h, c.c
			in = c.h
		}
		outs[t] = in
	}
	return outs, caches
}

// BackwardSequence back-propagates through time: dOut[t] is the loss
// gradient with respect to the top-layer hidden output at step t.
// Parameter gradients accumulate into the layers' Grad buffers. It returns
// the gradient with respect to each input xs[t]. Like ForwardSequence it
// allocates scratch per sequence, not per step: dc updates in place
// (stepBackward reads each element before overwriting it), dh double-
// buffers per layer, and upper layers' dx reuse one buffer each — only
// layer 0's dx slices persist, carved from a single slab, because they
// are the returned values.
func (m *LSTM) BackwardSequence(caches [][]*lstmCache, dOut [][]float64) [][]float64 {
	L := len(m.Layers)
	T := len(caches)
	dxs := make([][]float64, T)
	maxH := m.maxHidden()
	// Per-layer gradients flowing backward in time.
	dh := make([][]float64, L)
	dhNext := make([][]float64, L)
	dc := make([][]float64, L)
	dxBuf := make([][]float64, L)
	for li, l := range m.Layers {
		dh[li] = make([]float64, l.Hidden)
		dhNext[li] = make([]float64, l.Hidden)
		dc[li] = make([]float64, l.Hidden)
		if li > 0 {
			dxBuf[li] = make([]float64, l.In)
		}
	}
	in0 := m.Layers[0].In
	dxSlab := make([]float64, T*in0)
	dhTotal := make([]float64, maxH)
	dPre := make([]float64, 4*maxH)
	for t := T - 1; t >= 0; t-- {
		// Gradient entering the top layer's h at step t: from the loss plus
		// recurrent flow.
		carry := dOut[t]
		for li := L - 1; li >= 0; li-- {
			l := m.Layers[li]
			dht := dhTotal[:l.Hidden]
			copy(dht, dh[li])
			for k := range carry {
				dht[k] += carry[k]
			}
			dx := dxBuf[li]
			if li == 0 {
				dx = dxSlab[t*in0 : (t+1)*in0]
			}
			l.stepBackward(caches[t][li], dht, dc[li], dPre, dx, dhNext[li], dc[li])
			dh[li], dhNext[li] = dhNext[li], dh[li]
			carry = dx // becomes the gradient into the layer below's h
		}
		dxs[t] = carry
	}
	return dxs
}
