package nn

import (
	"math"
	"testing"

	"ibox/internal/sim"
)

// randSeq generates a deterministic pseudo-random input sequence.
func randSeq(seed int64, steps, dim int) [][]float64 {
	rng := sim.NewRand(seed, 11)
	xs := make([][]float64, steps)
	for t := range xs {
		xs[t] = make([]float64, dim)
		for k := range xs[t] {
			xs[t][k] = rng.NormFloat64()
		}
	}
	return xs
}

// TestStepBatchMatchesStep asserts the batched step is bitwise identical
// to the unbatched one, member by member, across multiple steps and batch
// sizes (including 1).
func TestStepBatchMatchesStep(t *testing.T) {
	const in, hidden, layers = 4, 6, 2
	lstm := NewLSTM(in, hidden, layers, 42)
	for _, n := range []int{1, 2, 5, 8} {
		seqs := make([][][]float64, n)
		for b := range seqs {
			seqs[b] = randSeq(int64(100+b), 7, in)
		}
		// Unbatched reference.
		refStates := make([]*State, n)
		for b := range refStates {
			refStates[b] = lstm.NewState()
		}
		refOuts := make([][][]float64, n)
		for b := 0; b < n; b++ {
			for t := 0; t < 7; t++ {
				var h []float64
				h, refStates[b] = lstm.Step(refStates[b], seqs[b][t])
				refOuts[b] = append(refOuts[b], h)
			}
		}
		// Batched.
		states := make([]*State, n)
		for b := range states {
			states[b] = lstm.NewState()
		}
		for tstep := 0; tstep < 7; tstep++ {
			xs := make([][]float64, n)
			for b := range xs {
				xs[b] = seqs[b][tstep]
			}
			var hs [][]float64
			hs, states = lstm.StepBatch(states, xs)
			for b := 0; b < n; b++ {
				for j := range hs[b] {
					if math.Float64bits(hs[b][j]) != math.Float64bits(refOuts[b][tstep][j]) {
						t.Fatalf("n=%d member %d step %d h[%d]: batch %v != step %v",
							n, b, tstep, j, hs[b][j], refOuts[b][tstep][j])
					}
				}
			}
		}
	}
}

// TestStepGaussianBatchMatchesStepGaussian checks the full predictor path
// (LSTM step + dense head + clamped head mapping) bitwise.
func TestStepGaussianBatchMatchesStepGaussian(t *testing.T) {
	m := NewSequenceModel(GaussianHead, 4, 5, 2, 7)
	const n, steps = 4, 9
	seqs := make([][][]float64, n)
	for b := range seqs {
		seqs[b] = randSeq(int64(200+b), steps, 4)
	}
	ref := make([][]GaussianOutput, n)
	for b := 0; b < n; b++ {
		p := m.NewPredictor()
		for t := 0; t < steps; t++ {
			ref[b] = append(ref[b], p.StepGaussian(seqs[b][t]))
		}
	}
	ps := make([]*Predictor, n)
	for b := range ps {
		ps[b] = m.NewPredictor()
	}
	for tstep := 0; tstep < steps; tstep++ {
		xs := make([][]float64, n)
		for b := range xs {
			xs[b] = seqs[b][tstep]
		}
		outs := StepGaussianBatch(ps, xs)
		for b, o := range outs {
			want := ref[b][tstep]
			if math.Float64bits(o.Mu) != math.Float64bits(want.Mu) ||
				math.Float64bits(o.Sigma) != math.Float64bits(want.Sigma) {
				t.Fatalf("member %d step %d: batch (%v,%v) != single (%v,%v)",
					b, tstep, o.Mu, o.Sigma, want.Mu, want.Sigma)
			}
		}
	}
}

// TestStepBatchLanesMatchesStep pins the per-lane-weights kernel: lanes
// over *different* compiled weight stacks of one shared architecture —
// odd hidden sizes, 1–4 layers, with and without pre-projected input
// prefixes — must each advance bitwise-identically to StepInto on their
// own model.
func TestStepBatchLanesMatchesStep(t *testing.T) {
	shapes := []struct{ in, hidden, layers int }{
		{4, 5, 1}, {4, 7, 2}, {5, 9, 3}, {4, 11, 4},
	}
	const n, steps = 5, 6
	for _, sh := range shapes {
		ims := make([]*InferModel, n)
		for b := range ims {
			// A distinct seed per lane: genuinely different weights.
			ims[b] = NewLSTM(sh.in, sh.hidden, sh.layers, int64(300+b)).Compile()
		}
		seqs := make([][][]float64, n)
		for b := range seqs {
			seqs[b] = randSeq(int64(400+b), steps, sh.in)
		}
		rows := ims[0].InputRowsPerStep()
		for upto := 0; upto <= sh.in; upto += 2 {
			// Per-lane pre-projection through the lane's own layer 0.
			pres := make([][]float64, n)
			var lanesPre [][]float64
			if upto > 0 {
				for b := range pres {
					pres[b] = make([]float64, steps*rows)
					ims[b].PreProjectInput(pres[b], seqs[b], upto)
				}
			}
			sts := make([]*InferState, n)
			refs := make([]*InferState, n)
			for b := range sts {
				sts[b] = ims[b].NewState()
				refs[b] = ims[b].NewState()
			}
			for tt := 0; tt < steps; tt++ {
				xs := make([][]float64, n)
				for b := range xs {
					xs[b] = seqs[b][tt]
				}
				tailOff := 0
				lanesPre = nil
				if upto > 0 {
					tailOff = upto
					lanesPre = make([][]float64, n)
					for b := range lanesPre {
						lanesPre[b] = pres[b][tt*rows : (tt+1)*rows]
					}
				}
				StepBatchLanesInto(ims, sts, xs, lanesPre, tailOff)
				for b := 0; b < n; b++ {
					want := ims[b].StepInto(refs[b], seqs[b][tt])
					bitsEqual(t, "lane step", sts[b].Top(), want)
				}
			}
		}
	}
}

// TestStepBatchLanesPanicsOnMixedArch: lanes spanning incompatible
// architectures must fail loudly instead of corrupting state.
func TestStepBatchLanesPanicsOnMixedArch(t *testing.T) {
	a := NewLSTM(4, 6, 2, 1).Compile()
	b := NewLSTM(4, 7, 2, 2).Compile() // different hidden width
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lanes over incompatible architectures")
		}
	}()
	StepBatchLanesInto(
		[]*InferModel{a, b},
		[]*InferState{a.NewState(), b.NewState()},
		[][]float64{{0, 0, 0, 0}, {0, 0, 0, 0}}, nil, 0)
}

func TestStepGaussianBatchPanicsOnMixedModels(t *testing.T) {
	m1 := NewSequenceModel(GaussianHead, 2, 3, 1, 1)
	m2 := NewSequenceModel(GaussianHead, 2, 3, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for predictors over different models")
		}
	}()
	StepGaussianBatch([]*Predictor{m1.NewPredictor(), m2.NewPredictor()},
		[][]float64{{0, 0}, {0, 0}})
}

// BenchmarkStepBatch measures the amortization: one batched step for 8
// members vs 8 unbatched steps.
func BenchmarkStepBatch(b *testing.B) {
	lstm := NewLSTM(4, 24, 2, 3)
	const n = 8
	xs := make([][]float64, n)
	states := make([]*State, n)
	for i := range xs {
		xs[i] = randSeq(int64(i), 1, 4)[0]
		states[i] = lstm.NewState()
	}
	b.Run("batched", func(b *testing.B) {
		s := append([]*State(nil), states...)
		for i := 0; i < b.N; i++ {
			_, s = lstm.StepBatch(s, xs)
		}
	})
	b.Run("unbatched", func(b *testing.B) {
		s := append([]*State(nil), states...)
		for i := 0; i < b.N; i++ {
			for m := 0; m < n; m++ {
				_, s[m] = lstm.Step(s[m], xs[m])
			}
		}
	})
}
