package nn

import (
	"encoding/json"
	"fmt"
)

// sequenceModelJSON is the serialized form of a SequenceModel.
type sequenceModelJSON struct {
	Kind   HeadKind    `json:"kind"`
	In     int         `json:"in"`
	Hidden int         `json:"hidden"`
	Layers int         `json:"layers"`
	Params [][]float64 `json:"params"` // flattened weights in Params() order
}

// MarshalJSON serializes the model's architecture and weights.
func (m *SequenceModel) MarshalJSON() ([]byte, error) {
	out := sequenceModelJSON{
		Kind:   m.Kind,
		In:     m.LSTM.Layers[0].In,
		Hidden: m.LSTM.Hidden(),
		Layers: len(m.LSTM.Layers),
	}
	for _, p := range m.Params() {
		out.Params = append(out.Params, p.W)
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a model serialized by MarshalJSON.
func (m *SequenceModel) UnmarshalJSON(data []byte) error {
	var in sequenceModelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("nn: decode sequence model: %w", err)
	}
	// Validate the architecture before building it: NewSequenceModel
	// panics on impossible shapes, and a corrupt or truncated checkpoint
	// must surface as an error, not a crash.
	if in.Kind != GaussianHead && in.Kind != BinaryHead {
		return fmt.Errorf("nn: serialized model has unknown head kind %d", in.Kind)
	}
	if in.In <= 0 || in.Hidden <= 0 || in.Layers <= 0 {
		return fmt.Errorf("nn: serialized model has impossible shape in=%d hidden=%d layers=%d",
			in.In, in.Hidden, in.Layers)
	}
	// Cap the shape well above any model this codebase trains (the paper's
	// largest is ≈2M parameters) so a corrupted size field cannot demand a
	// multi-gigabyte allocation before the weight count check runs.
	if in.In > 4096 || in.Hidden > 4096 || in.Layers > 64 {
		return fmt.Errorf("nn: serialized model shape in=%d hidden=%d layers=%d is implausibly large",
			in.In, in.Hidden, in.Layers)
	}
	restored := NewSequenceModel(in.Kind, in.In, in.Hidden, in.Layers, 0)
	params := restored.Params()
	if len(params) != len(in.Params) {
		return fmt.Errorf("nn: serialized model has %d tensors, want %d", len(in.Params), len(params))
	}
	for i, p := range params {
		if len(p.W) != len(in.Params[i]) {
			return fmt.Errorf("nn: tensor %d has %d weights, want %d", i, len(in.Params[i]), len(p.W))
		}
		copy(p.W, in.Params[i])
	}
	// Field-wise assignment: SequenceModel carries a mutex guarding its
	// compiled-kernel cache, so the struct must not be copied wholesale.
	// The fresh weights also mean any cached kernels are stale.
	m.Kind = restored.Kind
	m.LSTM = restored.LSTM
	m.Head = restored.Head
	m.invalidateKernels()
	return nil
}
