//go:build amd64

#include "textflag.h"

// func layerPreSIMD(blocks, x, h, pre, out *float64, nx, nh, groups, xoff, blkBytes int64)
//
// Computes gate pre-activations for groups*4 hidden units of one layer
// step. Four unit blocks are processed per outer iteration, one ymm
// accumulator each; within a block the four f64 lanes are the unit's
// four gate rows (i|f|g|o), matching the unit-interleaved packed layout,
// so each weight column k is a single 32-byte load.
//
// Bitwise contract: per lane the accumulation is init, then input terms
// in ascending k, then recurrent terms in ascending k, each as a
// separate VMULPD + VADDPD (never FMA: its single rounding differs from
// the scalar multiply-then-add), i.e. exactly gatePreScalar's chain.
//
// Register map:
//   R8-R11  the four unit-block cursors; weights are contiguous within a
//           block, so they advance 32 bytes per column and finish each
//           iteration at the next block — R11 lands on the next group.
//   SI, DI  x, h base pointers
//   AX      pre cursor (nil: accumulators start from the packed biases)
//   DX      out cursor
//   BX, R12 nx, nh
//   R13     remaining groups
//   R14     xoff (first non-pre-projected input column)
//   R15     blkBytes
//   CX      column counter / scratch
//   Y0-Y3   accumulators, Y4 broadcast column value, Y5-Y8 weight quads
TEXT ·layerPreSIMD(SB), NOSPLIT, $0-80
	MOVQ blocks+0(FP), R8
	MOVQ x+8(FP), SI
	MOVQ h+16(FP), DI
	MOVQ pre+24(FP), AX
	MOVQ out+32(FP), DX
	MOVQ nx+40(FP), BX
	MOVQ nh+48(FP), R12
	MOVQ groups+56(FP), R13
	MOVQ xoff+64(FP), R14
	MOVQ blkBytes+72(FP), R15

group:
	TESTQ R13, R13
	JZ    done

	// Cursors for the group's four unit blocks.
	MOVQ R8, R9
	ADDQ R15, R9
	MOVQ R9, R10
	ADDQ R15, R10
	MOVQ R10, R11
	ADDQ R15, R11

	// Accumulator init: pre-projected partials if pre != nil, else the
	// biases at the head of each block.
	TESTQ AX, AX
	JZ    frombias
	VMOVUPD (AX), Y0
	VMOVUPD 32(AX), Y1
	VMOVUPD 64(AX), Y2
	VMOVUPD 96(AX), Y3
	ADDQ    $128, AX
	JMP     accready

frombias:
	VMOVUPD (R8), Y0
	VMOVUPD (R9), Y1
	VMOVUPD (R10), Y2
	VMOVUPD (R11), Y3

accready:
	// Skip the bias quad and the pre-projected input columns [0, xoff).
	MOVQ R14, CX
	SHLQ $5, CX
	ADDQ $32, CX
	ADDQ CX, R8
	ADDQ CX, R9
	ADDQ CX, R10
	ADDQ CX, R11

	// Input terms, k = xoff .. nx-1 (ascending).
	MOVQ R14, CX
xloop:
	CMPQ CX, BX
	JGE  xdone
	VBROADCASTSD (SI)(CX*8), Y4
	VMOVUPD      (R8), Y5
	VMOVUPD      (R9), Y6
	VMOVUPD      (R10), Y7
	VMOVUPD      (R11), Y8
	VMULPD       Y4, Y5, Y5
	VMULPD       Y4, Y6, Y6
	VMULPD       Y4, Y7, Y7
	VMULPD       Y4, Y8, Y8
	VADDPD       Y5, Y0, Y0
	VADDPD       Y6, Y1, Y1
	VADDPD       Y7, Y2, Y2
	VADDPD       Y8, Y3, Y3
	ADDQ         $32, R8
	ADDQ         $32, R9
	ADDQ         $32, R10
	ADDQ         $32, R11
	INCQ         CX
	JMP          xloop

xdone:
	// Recurrent terms, k = 0 .. nh-1 (ascending).
	XORQ CX, CX
hloop:
	CMPQ CX, R12
	JGE  hdone
	VBROADCASTSD (DI)(CX*8), Y4
	VMOVUPD      (R8), Y5
	VMOVUPD      (R9), Y6
	VMOVUPD      (R10), Y7
	VMOVUPD      (R11), Y8
	VMULPD       Y4, Y5, Y5
	VMULPD       Y4, Y6, Y6
	VMULPD       Y4, Y7, Y7
	VMULPD       Y4, Y8, Y8
	VADDPD       Y5, Y0, Y0
	VADDPD       Y6, Y1, Y1
	VADDPD       Y7, Y2, Y2
	VADDPD       Y8, Y3, Y3
	ADDQ         $32, R8
	ADDQ         $32, R9
	ADDQ         $32, R10
	ADDQ         $32, R11
	INCQ         CX
	JMP          hloop

hdone:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	ADDQ    $128, DX

	// R11 has walked exactly one block past its start, i.e. onto the
	// next group's first block.
	MOVQ R11, R8
	DECQ R13
	JMP  group

done:
	VZEROUPPER
	RET

// func cpuHasAVX2() bool
//
// CPUID.1:ECX must report OSXSAVE+AVX, XCR0 must have XMM+YMM state
// enabled, and CPUID.7.0:EBX must report AVX2.
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $0x18000000, R8
	CMPL R8, $0x18000000
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	BTL  $5, BX
	JNC  no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET
