package nn

import (
	"math"
	"testing"

	"ibox/internal/sim"
)

// numericalGrad computes a central-difference gradient of loss() with
// respect to p.W[i].
func numericalGrad(p *Param, i int, loss func() float64) float64 {
	const h = 1e-5
	orig := p.W[i]
	p.W[i] = orig + h
	lp := loss()
	p.W[i] = orig - h
	lm := loss()
	p.W[i] = orig
	return (lp - lm) / (2 * h)
}

// gradCheck verifies every analytic gradient in params against finite
// differences of loss(). compute() must zero nothing and accumulate grads
// from a clean state.
func gradCheck(t *testing.T, params []*Param, compute func() float64, loss func() float64) {
	t.Helper()
	for _, p := range params {
		p.ZeroGrad()
	}
	compute()
	for pi, p := range params {
		for i := range p.W {
			want := numericalGrad(p, i, loss)
			got := p.Grad[i]
			tol := 1e-4 * math.Max(1, math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Fatalf("param %d[%d]: analytic %.8f vs numeric %.8f", pi, i, got, want)
			}
		}
	}
}

func TestDenseForward(t *testing.T) {
	d := NewDense(2, 2, 1)
	copy(d.W.W, []float64{1, 2, 3, 4})
	copy(d.B.W, []float64{10, 20})
	y := d.Forward([]float64{1, 1})
	if y[0] != 13 || y[1] != 27 {
		t.Errorf("forward = %v, want [13 27]", y)
	}
}

func TestDenseGradCheck(t *testing.T) {
	d := NewDense(3, 2, 7)
	x := []float64{0.5, -1.2, 2.0}
	target := []float64{1.0, -0.5}
	loss := func() float64 {
		y := d.Forward(x)
		l := 0.0
		for i := range y {
			dd := y[i] - target[i]
			l += 0.5 * dd * dd
		}
		return l
	}
	compute := func() float64 {
		y := d.Forward(x)
		dy := make([]float64, len(y))
		for i := range y {
			dy[i] = y[i] - target[i]
		}
		d.Backward(x, dy)
		return loss()
	}
	gradCheck(t, d.Params(), compute, loss)
}

func TestDenseBackwardInputGrad(t *testing.T) {
	d := NewDense(3, 2, 3)
	x := []float64{0.3, 0.7, -0.2}
	dy := []float64{1.5, -0.4}
	dx := d.Backward(x, dy)
	// dx = Wᵀ·dy
	for i := 0; i < 3; i++ {
		want := d.W.W[0*3+i]*dy[0] + d.W.W[1*3+i]*dy[1]
		if math.Abs(dx[i]-want) > 1e-12 {
			t.Errorf("dx[%d] = %v, want %v", i, dx[i], want)
		}
	}
}

func TestLSTMStepShapesAndDeterminism(t *testing.T) {
	m := NewLSTM(3, 5, 2, 42)
	s := m.NewState()
	x := []float64{0.1, -0.2, 0.3}
	h1, s1 := m.Step(s, x)
	h2, _ := m.Step(s, x)
	if len(h1) != 5 {
		t.Fatalf("output size %d", len(h1))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("Step not deterministic / mutated input state")
		}
	}
	// Advancing state must change the output for the same input.
	h3, _ := m.Step(s1, x)
	same := true
	for i := range h1 {
		if h1[i] != h3[i] {
			same = false
		}
	}
	if same {
		t.Error("state had no effect")
	}
}

func TestLSTMGradCheckGaussian(t *testing.T) {
	// Full BPTT gradient check through a 2-layer LSTM + Gaussian head over
	// a short sequence.
	m := NewSequenceModel(GaussianHead, 2, 3, 2, 11)
	xs := [][]float64{{0.5, -0.1}, {0.2, 0.8}, {-0.7, 0.3}, {0.1, 0.1}}
	ys := []float64{0.3, -0.2, 0.5, 0.0}
	loss := func() float64 {
		outs, _ := m.LSTM.ForwardSequence(xs)
		total := 0.0
		for tt := range xs {
			l, _ := gaussianNLL(m.Head.Forward(outs[tt]), ys[tt])
			total += l
		}
		return total / float64(len(xs))
	}
	compute := func() float64 { return m.TrainSequence(xs, ys, nil) }
	gradCheck(t, m.Params(), compute, loss)
}

func TestLSTMGradCheckBinary(t *testing.T) {
	m := NewSequenceModel(BinaryHead, 2, 3, 1, 13)
	xs := [][]float64{{0.5, -0.1}, {0.2, 0.8}, {-0.7, 0.3}}
	ys := []float64{1, 0, 1}
	loss := func() float64 {
		outs, _ := m.LSTM.ForwardSequence(xs)
		total := 0.0
		for tt := range xs {
			l, _ := bceLoss(m.Head.Forward(outs[tt])[0], ys[tt])
			total += l
		}
		return total / float64(len(xs))
	}
	compute := func() float64 { return m.TrainSequence(xs, ys, nil) }
	gradCheck(t, m.Params(), compute, loss)
}

func TestTrainSequenceMask(t *testing.T) {
	m := NewSequenceModel(GaussianHead, 1, 4, 1, 5)
	xs := [][]float64{{1}, {2}, {3}}
	ys := []float64{1, 99999, 3} // step 1 masked out
	mask := []bool{true, false, true}
	l1 := m.TrainSequence(xs, ys, mask)
	if math.IsNaN(l1) || math.IsInf(l1, 0) {
		t.Fatalf("masked loss = %v", l1)
	}
	// With everything masked, loss is NaN and no gradient accumulates.
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	l2 := m.TrainSequence(xs, ys, []bool{false, false, false})
	if !math.IsNaN(l2) {
		t.Errorf("fully masked loss = %v, want NaN", l2)
	}
	for _, p := range m.Params() {
		for _, g := range p.Grad {
			if g != 0 {
				t.Fatal("fully masked sequence accumulated gradient")
			}
		}
	}
}

func TestLSTMLearnsSyntheticPattern(t *testing.T) {
	// Learn y_t = 0.8·x_t + 0.5·x_{t−1}: requires memory, solvable by a
	// small LSTM in a few hundred steps.
	m := NewSequenceModel(GaussianHead, 1, 8, 1, 21)
	opt := NewAdam(0.01, m.Params())
	rng := sim.NewRand(9, 0)
	makeSeq := func() ([][]float64, []float64) {
		T := 30
		xs := make([][]float64, T)
		ys := make([]float64, T)
		prev := 0.0
		for t := 0; t < T; t++ {
			x := rng.Float64()*2 - 1
			xs[t] = []float64{x}
			ys[t] = 0.8*x + 0.5*prev
			prev = x
		}
		return xs, ys
	}
	var last float64
	for epoch := 0; epoch < 300; epoch++ {
		xs, ys := makeSeq()
		last = m.TrainSequence(xs, ys, nil)
		opt.Step()
	}
	// Gaussian NLL of a well-fit unit problem should fall well below the
	// initial ~1.4 (σ≈1 guessing); demand clear learning.
	if last > 0.2 {
		t.Errorf("final NLL = %.3f, model failed to learn", last)
	}
	// Check predictions directly.
	xs, ys := makeSeq()
	outs := m.PredictSequence(xs)
	mse := 0.0
	for t := 1; t < len(xs); t++ {
		d := outs[t].Mu - ys[t]
		mse += d * d
	}
	mse /= float64(len(xs) - 1)
	if mse > 0.02 {
		t.Errorf("prediction MSE = %.4f, want < 0.02", mse)
	}
}

func TestAdamReducesLoss(t *testing.T) {
	d := NewDense(2, 1, 3)
	opt := NewAdam(0.05, d.Params())
	x := []float64{1, 2}
	target := 3.0
	lossAt := func() float64 {
		y := d.Forward(x)[0]
		return 0.5 * (y - target) * (y - target)
	}
	initial := lossAt()
	for i := 0; i < 200; i++ {
		y := d.Forward(x)[0]
		d.Backward(x, []float64{y - target})
		opt.Step()
	}
	if final := lossAt(); final > initial/100 {
		t.Errorf("loss %.6f → %.6f: Adam failed to optimize", initial, final)
	}
}

func TestAdamClipsGradients(t *testing.T) {
	p := newParam(2)
	p.Grad[0], p.Grad[1] = 3e6, 4e6
	opt := NewAdam(0.1, []*Param{p})
	opt.Step() // must not produce NaN/Inf weights
	for _, w := range p.W {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatal("clipped step produced non-finite weight")
		}
	}
}

func TestGaussianNLLGradient(t *testing.T) {
	out := []float64{0.5, -0.3}
	y := 1.2
	_, grad := gaussianNLL(out, y)
	for i := range out {
		const h = 1e-6
		out[i] += h
		lp, _ := gaussianNLL(out, y)
		out[i] -= 2 * h
		lm, _ := gaussianNLL(out, y)
		out[i] += h
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grad[i]) > 1e-5 {
			t.Errorf("gaussianNLL grad[%d] = %v, numeric %v", i, grad[i], num)
		}
	}
}

func TestGaussianClamp(t *testing.T) {
	g := gaussianFromHead([]float64{0, -100})
	if g.Sigma < math.Exp(logSigmaMin)*0.99 {
		t.Errorf("sigma = %v not clamped", g.Sigma)
	}
	g = gaussianFromHead([]float64{0, 100})
	if g.Sigma > math.Exp(logSigmaMax)*1.01 {
		t.Errorf("sigma = %v not clamped", g.Sigma)
	}
	// Gradient through a clamped logSigma is zero.
	_, grad := gaussianNLL([]float64{0, 100}, 5)
	if grad[1] != 0 {
		t.Error("clamped logSigma has nonzero gradient")
	}
}

func TestBCELoss(t *testing.T) {
	l0, g0 := bceLoss(100, 1) // confident correct
	if l0 > 1e-6 || math.Abs(g0) > 1e-6 {
		t.Errorf("confident correct: loss %v grad %v", l0, g0)
	}
	l1, g1 := bceLoss(-100, 1) // confident wrong
	if l1 < 10 || g1 > -0.99 {
		t.Errorf("confident wrong: loss %v grad %v", l1, g1)
	}
}

func TestPredictorClosedLoop(t *testing.T) {
	m := NewSequenceModel(GaussianHead, 2, 4, 1, 33)
	p := m.NewPredictor()
	out1 := p.StepGaussian([]float64{1, 0})
	out2 := p.StepGaussian([]float64{1, 0})
	if out1 == out2 {
		t.Error("recurrent state not advancing")
	}
	p.Reset()
	out3 := p.StepGaussian([]float64{1, 0})
	if out1 != out3 {
		t.Error("Reset did not restore initial state")
	}
	if out1.Sigma <= 0 {
		t.Error("non-positive sigma")
	}
}

func TestNumParams(t *testing.T) {
	m := NewSequenceModel(GaussianHead, 4, 8, 2, 0)
	// Layer 1: 4·8·4 + 4·8·8 + 4·8 = 128+256+32 = 416
	// Layer 2: 4·8·8 + 4·8·8 + 32 = 256+256+32 = 544
	// Head: 8·2 + 2 = 18
	if got := m.NumParams(); got != 416+544+18 {
		t.Errorf("NumParams = %d, want %d", got, 416+544+18)
	}
}

func TestLogisticLearnsSeparableData(t *testing.T) {
	rng := sim.NewRand(4, 0)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 400; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		y := 0.0
		if x[0]+x[1] > 0 {
			y = 1
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	l := NewLogistic(2)
	l.Fit(xs, ys, 300, 0.5, 0)
	correct := 0
	for i := range xs {
		pred := 0.0
		if l.Prob(xs[i]) > 0.5 {
			pred = 1
		}
		if pred == ys[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.95 {
		t.Errorf("logistic accuracy = %.2f, want ≥ 0.95", acc)
	}
}

func TestLogisticImbalancedClasses(t *testing.T) {
	// 5% positive rate (like reordering): class weighting must keep recall
	// usable rather than predicting all-negative.
	rng := sim.NewRand(14, 0)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 1000; i++ {
		y := 0.0
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		if i%20 == 0 {
			y = 1
			x[0] += 2.5
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	l := NewLogistic(2)
	l.Fit(xs, ys, 300, 0.5, 0)
	// The balanced Score discriminates at the 0.5 threshold.
	tp, fn := 0, 0
	for i := range xs {
		if ys[i] == 1 {
			if l.Score(xs[i]) > 0.5 {
				tp++
			} else {
				fn++
			}
		}
	}
	if recall := float64(tp) / float64(tp+fn); recall < 0.7 {
		t.Errorf("recall on rare class = %.2f, want ≥ 0.7", recall)
	}
	// The calibrated Prob tracks the true base rate (≈5%) on average.
	sum := 0.0
	for i := range xs {
		sum += l.Prob(xs[i])
	}
	if avg := sum / float64(len(xs)); avg > 0.15 {
		t.Errorf("mean calibrated probability = %.3f, want near base rate 0.05", avg)
	}
}

func TestLogisticEmptyFit(t *testing.T) {
	l := NewLogistic(2)
	l.Fit(nil, nil, 10, 0.1, 0) // must not panic
	if p := l.Prob([]float64{1, 1}); p != 0.5 {
		t.Errorf("untrained prob = %v, want 0.5", p)
	}
}
