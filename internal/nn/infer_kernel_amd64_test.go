//go:build amd64

package nn

import (
	"math"
	"testing"
)

// TestSIMDMatchesScalar runs the same sequences through the kernel with
// the AVX2 backend on and off and demands bitwise-identical outputs —
// the separate-multiply-then-add lane arithmetic must be exactly the
// scalar chain. Skipped on machines without AVX2 (the toggle would test
// scalar against itself).
func TestSIMDMatchesScalar(t *testing.T) {
	if !haveSIMD {
		t.Skip("no AVX2; SIMD path unavailable")
	}
	defer func(v bool) { haveSIMD = v }(haveSIMD)
	for _, sh := range kernelShapes {
		lstm := NewLSTM(sh.in, sh.hidden, sh.layers, 61)
		im := lstm.Compile()
		xs := randSeq(62, 9, sh.in)

		haveSIMD = true
		simdSt := im.NewState()
		simd := make([][]float64, len(xs))
		for tt, x := range xs {
			simd[tt] = append([]float64(nil), im.StepInto(simdSt, x)...)
		}
		simdFwd := im.Forward(xs)

		haveSIMD = false
		scalSt := im.NewState()
		for tt, x := range xs {
			got := im.StepInto(scalSt, x)
			for j := range got {
				if math.Float64bits(got[j]) != math.Float64bits(simd[tt][j]) {
					t.Fatalf("shape %+v step %d h[%d]: scalar %v != simd %v",
						sh, tt, j, got[j], simd[tt][j])
				}
			}
		}
		scalFwd := im.Forward(xs)
		for tt := range scalFwd {
			for j := range scalFwd[tt] {
				if math.Float64bits(scalFwd[tt][j]) != math.Float64bits(simdFwd[tt][j]) {
					t.Fatalf("shape %+v forward step %d h[%d]: scalar %v != simd %v",
						sh, tt, j, scalFwd[tt][j], simdFwd[tt][j])
				}
			}
		}
	}
}
