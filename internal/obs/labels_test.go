package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterVecBasics(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("http_requests", "route", "status")
	cv.With("simulate", "2xx").Add(3)
	cv.With("simulate", "4xx").Add(1)
	cv.With("models", "2xx").Add(2)
	cv.With("simulate", "2xx").Add(4)

	if got := cv.With("simulate", "2xx").Value(); got != 7 {
		t.Fatalf(`With("simulate","2xx") = %d, want 7`, got)
	}
	if cv.With("simulate", "2xx") != cv.With("simulate", "2xx") {
		t.Fatal("same label values resolved to different children")
	}
	if cv.With("simulate", "2xx") == cv.With("simulate", "4xx") {
		t.Fatal("different label values resolved to the same child")
	}
	// Same name returns the same family, whatever keys are passed later.
	if r.CounterVec("http_requests", "other") != cv {
		t.Fatal("second CounterVec call minted a new family")
	}

	snap := r.Snapshot()
	if got := snap.Counters[`http_requests{route="simulate",status="2xx"}`]; got != 7 {
		t.Fatalf("flattened snapshot key = %d, want 7 (snapshot: %v)", got, snap.Counters)
	}
	if got := snap.Counters[`http_requests{route="models",status="2xx"}`]; got != 2 {
		t.Fatalf("flattened snapshot key = %d, want 2", got)
	}
}

func TestGaugeAndHistogramVecs(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("depth", "queue")
	gv.With("fast").Set(4)
	hv := r.HistogramVec("lat_ns", "route")
	hv.With("simulate").Observe(1000)
	hv.With("simulate").Observe(3000)

	snap := r.Snapshot()
	if got := snap.Gauges[`depth{queue="fast"}`]; got != 4 {
		t.Fatalf("gauge child = %v, want 4", got)
	}
	h := snap.Histograms[`lat_ns{route="simulate"}`]
	if h.Count != 2 {
		t.Fatalf("histogram child count = %d, want 2", h.Count)
	}
	if h.Sum != 4000 {
		t.Fatalf("histogram child sum = %d, want 4000", h.Sum)
	}
}

func TestVecCardinalityCap(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("per_model", "model")
	cv.SetMaxSeries(2)
	cv.With("a").Add(1)
	cv.With("b").Add(1)
	// Beyond the cap: every distinct tuple shares the overflow child.
	of1 := cv.With("c")
	of1.Add(1)
	of2 := cv.With("d")
	of2.Add(1)
	if of1 != of2 {
		t.Fatal("overflow tuples resolved to different children")
	}
	if got := of1.Value(); got != 2 {
		t.Fatalf("overflow child = %d, want 2", got)
	}
	if got := r.Counter("obs.series_dropped").Value(); got != 2 {
		t.Fatalf("series_dropped = %d, want 2", got)
	}
	snap := r.Snapshot()
	key := `per_model{model="` + OverflowLabel + `"}`
	if got := snap.Counters[key]; got != 2 {
		t.Fatalf("snapshot %s = %d, want 2 (snapshot: %v)", key, got, snap.Counters)
	}
	// Established children stay reachable under the cap.
	if got := cv.With("a").Value(); got != 1 {
		t.Fatalf(`With("a") after overflow = %d, want 1`, got)
	}
}

func TestVecNilSafe(t *testing.T) {
	var r *Registry
	cv := r.CounterVec("x", "k")
	gv := r.GaugeVec("x", "k")
	hv := r.HistogramVec("x", "k")
	if cv != nil || gv != nil || hv != nil {
		t.Fatal("nil registry returned non-nil families")
	}
	// All no-ops; must not panic.
	cv.With("v").Add(1)
	gv.With("v").Set(1)
	hv.With("v").Observe(1)
	cv.SetMaxSeries(4)
}

func TestVecDisabledZeroAllocs(t *testing.T) {
	Disable()
	var cv *CounterVec
	var hv *HistogramVec
	if n := testing.AllocsPerRun(100, func() {
		cv.With("simulate", "2xx").Add(1)
		hv.With("simulate", "m.json", "2xx", "true").Observe(5)
	}); n != 0 {
		t.Fatalf("disabled labeled path allocates %.1f bytes/op, want 0", n)
	}
}

func TestVecHitPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("c", "route", "status")
	hv := r.HistogramVec("h", "route", "model", "status", "batched")
	// Materialize the children; only the first observation may allocate.
	cv.With("simulate", "2xx").Add(1)
	hv.With("simulate", "m.json", "2xx", "true").Observe(1)
	if n := testing.AllocsPerRun(100, func() {
		cv.With("simulate", "2xx").Add(1)
		hv.With("simulate", "m.json", "2xx", "true").Observe(12345)
	}); n != 0 {
		t.Fatalf("labeled hit path allocates %.1f bytes/op, want 0", n)
	}
}

func TestVecConcurrent(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("c", "shard")
	shards := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				cv.With(shards[(g+i)%len(shards)]).Add(1)
			}
		}(g)
	}
	wg.Wait()
	total := int64(0)
	for _, s := range shards {
		total += cv.With(s).Value()
	}
	if total != 8000 {
		t.Fatalf("concurrent increments total %d, want 8000", total)
	}
}

func TestLabelEscaping(t *testing.T) {
	got := labelString([]string{"k"}, []string{"a\"b\\c\nd"})
	want := `k="a\"b\\c\nd"`
	if got != want {
		t.Fatalf("labelString = %s, want %s", got, want)
	}
	if e := escapeLabel("plain"); e != "plain" {
		t.Fatalf("escapeLabel(plain) = %q", e)
	}
	// A hostile value must still round-trip through the exposition parser.
	r := NewRegistry()
	r.CounterVec("c", "model").With("evil\"model\n").Add(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ValidateExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("escaped label failed validation: %v\n%s", err, b.String())
	}
}
