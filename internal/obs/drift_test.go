package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestDriftSketchObserve(t *testing.T) {
	var d DriftSketch
	// 100 observations spread uniformly across the bins, NLL 1.5 each.
	for i := 0; i < 100; i++ {
		d.Observe((float64(i)+0.5)/100, 1.5)
	}
	s := d.Snapshot()
	if s.Windows != 100 {
		t.Fatalf("windows = %d, want 100", s.Windows)
	}
	if math.Abs(s.NLL-1.5) > 1e-12 {
		t.Fatalf("mean NLL = %v, want 1.5", s.NLL)
	}
	if len(s.PIT) != DriftPITBins {
		t.Fatalf("PIT bins = %d, want %d", len(s.PIT), DriftPITBins)
	}
	for b, f := range s.PIT {
		if math.Abs(f-0.1) > 1e-12 {
			t.Fatalf("bin %d fraction = %v, want 0.1", b, f)
		}
	}
	if s.PITDeviation > 1e-12 {
		t.Fatalf("uniform PIT deviation = %v, want 0", s.PITDeviation)
	}
}

func TestDriftSketchEdges(t *testing.T) {
	var d DriftSketch
	// PIT exactly 1.0 clamps into the last bin; negative clamps to the
	// first; NaN/Inf observations are dropped entirely.
	d.Observe(1.0, 0)
	d.Observe(-0.5, 0)
	d.Observe(math.NaN(), 0)
	d.Observe(0.5, math.NaN())
	d.Observe(0.5, math.Inf(1))
	s := d.Snapshot()
	if s.Windows != 2 {
		t.Fatalf("windows = %d, want 2 (non-finite dropped)", s.Windows)
	}
	if s.PIT[DriftPITBins-1] != 0.5 || s.PIT[0] != 0.5 {
		t.Fatalf("clamped bins: %v", s.PIT)
	}

	var nilSketch *DriftSketch
	nilSketch.Observe(0.5, 1) // no panic
	if ns := nilSketch.Snapshot(); ns.Windows != 0 {
		t.Fatalf("nil sketch snapshot: %+v", ns)
	}
	if s := (&DriftSketch{}).Snapshot(); s.Windows != 0 || s.PIT != nil {
		t.Fatalf("empty sketch snapshot: %+v", s)
	}
}

// TestDriftSketchObserveZeroAlloc pins the hit-path contract: scoring a
// window on the serving path must not allocate.
func TestDriftSketchObserveZeroAlloc(t *testing.T) {
	var d DriftSketch
	if n := testing.AllocsPerRun(1000, func() {
		d.Observe(0.42, 1.1)
	}); n != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", n)
	}
}

func TestDriftSketchConcurrent(t *testing.T) {
	var d DriftSketch
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				d.Observe(float64(i%10)/10+0.05, 2.0)
				if i%64 == 0 {
					_ = d.Snapshot() // reads race against writes
				}
			}
		}(w)
	}
	wg.Wait()
	s := d.Snapshot()
	if s.Windows != workers*per {
		t.Fatalf("windows = %d, want %d", s.Windows, workers*per)
	}
	if math.Abs(s.NLL-2.0) > 1e-9 {
		t.Fatalf("mean NLL = %v, want 2.0", s.NLL)
	}
}

func TestDriftPolicyJudge(t *testing.T) {
	base := &DriftBaseline{NLL: 1.0, PITDeviation: 0.05}
	p := DriftPolicy{MinWindows: 10, NLLSlack: 0.5, PITSlack: 0.1}
	cases := []struct {
		name string
		s    DriftSnapshot
		base *DriftBaseline
		want DriftVerdict
	}{
		{"cold", DriftSnapshot{Windows: 9, NLL: 99}, base, DriftCold},
		{"ok", DriftSnapshot{Windows: 10, NLL: 1.2, PITDeviation: 0.05}, base, DriftOK},
		{"warn on NLL", DriftSnapshot{Windows: 10, NLL: 1.6, PITDeviation: 0.05}, base, DriftWarn},
		{"failing on NLL", DriftSnapshot{Windows: 10, NLL: 2.1, PITDeviation: 0.05}, base, DriftFailing},
		{"warn on PIT", DriftSnapshot{Windows: 10, NLL: 1.0, PITDeviation: 0.16}, base, DriftWarn},
		{"failing on PIT", DriftSnapshot{Windows: 10, NLL: 1.0, PITDeviation: 0.30}, base, DriftFailing},
		// No baseline: NLL has no reference, PIT judged vs uniform.
		{"legacy ok", DriftSnapshot{Windows: 10, NLL: 99, PITDeviation: 0.05}, nil, DriftOK},
		{"legacy failing", DriftSnapshot{Windows: 10, PITDeviation: 0.25}, nil, DriftFailing},
	}
	for _, tc := range cases {
		if got := p.Judge(tc.s, tc.base); got != tc.want {
			t.Errorf("%s: Judge = %v, want %v", tc.name, got, tc.want)
		}
	}

	// Zero policy takes defaults and still cold-gates.
	if got := (DriftPolicy{}).Judge(DriftSnapshot{Windows: 1}, nil); got != DriftCold {
		t.Fatalf("default policy on 1 window = %v, want cold", got)
	}
	def := DriftPolicy{}.WithDefaults()
	if def.MinWindows != 128 || def.NLLSlack != 0.5 || def.PITSlack != 0.08 {
		t.Fatalf("defaults = %+v", def)
	}
}

func TestDriftVerdictString(t *testing.T) {
	for v, want := range map[DriftVerdict]string{
		DriftCold: "cold", DriftOK: "ok", DriftWarn: "warn", DriftFailing: "failing",
	} {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", v, got, want)
		}
	}
}

func TestDriftSnapshotJSON(t *testing.T) {
	var d DriftSketch
	d.Observe(0.05, 1.0)
	out, err := json.Marshal(d.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"windows"`, `"nll"`, `"pit"`, `"pit_deviation"`} {
		if !strings.Contains(string(out), key) {
			t.Fatalf("snapshot JSON missing %s: %s", key, out)
		}
	}
}
