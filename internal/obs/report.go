package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Report is the RUN_REPORT.json schema: a structured end-of-run summary
// of one observed pipeline run.
type Report struct {
	// GeneratedAt is the report build time (RFC 3339, UTC).
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	// WallSeconds is the time from registry installation to report build.
	WallSeconds float64 `json:"wall_seconds"`
	// WorkerUtilization is busy-time / capacity of the par fan-out pool:
	// Σ per-item durations over Σ (per-Map wall × workers). 1.0 means
	// every worker was busy for every dispatched Map's full duration; 0
	// when nothing fanned out.
	WorkerUtilization float64 `json:"worker_utilization"`
	// PoolUtilization is the shared engine pool's occupancy: Σ per-job
	// worker occupancy (par.pool_busy_ns, which counts Do jobs, PoolMap
	// dispatch frames and dispatched sub-jobs) over run wall ×
	// par.pool_workers. 0 when no shared pool was used. Occupancy of a
	// dispatch frame includes the tail where it waits on its dispatched
	// items, because that worker slot is genuinely consumed — this is
	// utilization of the concurrency budget, not pure compute time.
	PoolUtilization float64 `json:"pool_utilization"`
	// Stages lists every finished span in start order; Depth > 0 marks a
	// child stage of the nearest preceding shallower stage.
	Stages []StageReport `json:"stages"`
	// Fidelity holds one model-fidelity record per trained model: training
	// trajectory diagnostics and held-out calibration of the predictive
	// distribution (see Fidelity). Present for any run that trains iBoxML
	// with observability enabled.
	Fidelity []Fidelity `json:"fidelity,omitempty"`
	// Counters/Gauges/Histograms are the final metric values, keyed by
	// metric name ("par.item_ns", "iboxml.epoch_loss", …).
	Counters   map[string]int64            `json:"counters"`
	Gauges     map[string]float64          `json:"gauges"`
	Histograms map[string]HistogramSummary `json:"histograms"`
}

// StageReport is one finished span.
type StageReport struct {
	Name    string  `json:"name"`
	Depth   int     `json:"depth"`
	StartMs float64 `json:"start_ms"`
	Seconds float64 `json:"seconds"`
	// Items is the number of work items the stage processed (0 when the
	// stage didn't record one).
	Items int64 `json:"items,omitempty"`
	// Args carries the stage's annotations (profile name, protocol, …).
	Args map[string]string `json:"args,omitempty"`
}

// Metric names the par fan-out layer records; BuildReport derives worker
// utilization from them.
const (
	MetricParItemNs     = "par.item_ns"
	MetricParCapacityNs = "par.capacity_ns"
	// MetricPoolBusyNs is per-job worker occupancy on the shared
	// par.Pool; BuildReport derives PoolUtilization from it and the
	// par.pool_workers gauge.
	MetricPoolBusyNs = "par.pool_busy_ns"
)

// BuildReport digests the registry into a Report. Works on a nil
// registry (empty report), so callers can build unconditionally.
func (r *Registry) BuildReport() Report {
	snap := r.Snapshot()
	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Counters:    snap.Counters,
		Gauges:      snap.Gauges,
		Histograms:  snap.Histograms,
	}
	if r != nil {
		rep.WallSeconds = time.Since(r.start).Seconds()
	}
	if capNs := snap.Counters[MetricParCapacityNs]; capNs > 0 {
		rep.WorkerUtilization = float64(r.Histogram(MetricParItemNs).Sum()) / float64(capNs)
	}
	if w := snap.Gauges["par.pool_workers"]; w > 0 && rep.WallSeconds > 0 {
		rep.PoolUtilization = float64(r.Histogram(MetricPoolBusyNs).Sum()) /
			(rep.WallSeconds * 1e9 * w)
	}
	rep.Fidelity = r.FidelityRecords()
	for _, sp := range r.finishedSpans() {
		rep.Stages = append(rep.Stages, StageReport{
			Name:    sp.Name,
			Depth:   sp.Depth,
			StartMs: float64(sp.Start) / 1e6,
			Seconds: sp.End.Seconds() - sp.Start.Seconds(),
			Items:   sp.Items,
			Args:    sp.Args,
		})
	}
	return rep
}

// WriteReport builds the report and writes it as indented JSON to path.
func (r *Registry) WriteReport(path string) error {
	data, err := json.MarshalIndent(r.BuildReport(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: write report: %w", err)
	}
	return nil
}

// LoadReport reads a RUN_REPORT.json written by WriteReport.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read report: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("obs: parse report %s: %w", path, err)
	}
	return &rep, nil
}
