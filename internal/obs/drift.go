package obs

import (
	"math"
	"sync/atomic"
)

// Streaming model-drift sketch. A trained probabilistic model ships with
// a training-time calibration scorecard (held-out PIT histogram and
// standardized NLL); at serving time, replay requests carry the observed
// delays they ask the model to reproduce, so every scored request yields
// fresh (PIT, NLL) samples of the model's *current* predictive honesty.
// DriftSketch accumulates those samples in bounded memory with the same
// lock-free discipline as the labeled metric families: Observe is a
// handful of atomic adds on the request path (no locks, no allocations,
// no clock reads), Snapshot folds the atomics into a scorecard shaped
// like the training-time baseline, and DriftPolicy.Judge compares the
// two into an ok / warn / failing verdict.

// DriftPITBins is the PIT histogram resolution of the sketch — the same
// 10 bins iboxml.Calibrate uses, so streaming and training-time
// histograms are directly comparable.
const DriftPITBins = 10

// DriftSketch accumulates streaming PIT/NLL observations for one model.
// The zero value is ready to use. All methods are safe for concurrent
// use; Observe is lock-free and allocation-free.
type DriftSketch struct {
	pit     [DriftPITBins]atomic.Int64
	count   atomic.Int64
	nllBits atomic.Uint64 // Σ NLL as float64 bits, CAS-accumulated
}

// Observe records one scored window: pit is the probability integral
// transform Φ(z) in [0,1], nll the standardized negative log-likelihood.
// Non-finite observations are dropped. Nil-safe.
func (d *DriftSketch) Observe(pit, nll float64) {
	if d == nil || math.IsNaN(pit) || math.IsInf(nll, 0) || math.IsNaN(nll) {
		return
	}
	b := int(pit * DriftPITBins)
	if b < 0 {
		b = 0
	}
	if b >= DriftPITBins {
		b = DriftPITBins - 1
	}
	d.pit[b].Add(1)
	for {
		old := d.nllBits.Load()
		if d.nllBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+nll)) {
			break
		}
	}
	// Count last: a concurrent Snapshot may under-read, never over-read.
	d.count.Add(1)
}

// DriftSnapshot is a point-in-time view of a sketch, shaped like the
// training-time iboxml.Calibration scorecard.
type DriftSnapshot struct {
	Windows      int64     `json:"windows"`       // scored windows so far
	NLL          float64   `json:"nll"`           // mean standardized NLL
	PIT          []float64 `json:"pit,omitempty"` // bin fractions (sums to 1)
	PITDeviation float64   `json:"pit_deviation"` // max |bin − 1/bins|
}

// Snapshot folds the sketch's atomics into a scorecard. Concurrent
// Observes may straddle the read; the result is a consistent-enough view
// for verdicts (bin fractions normalized by the bins actually read).
func (d *DriftSketch) Snapshot() DriftSnapshot {
	if d == nil {
		return DriftSnapshot{}
	}
	var bins [DriftPITBins]int64
	total := int64(0)
	for b := range bins {
		bins[b] = d.pit[b].Load()
		total += bins[b]
	}
	s := DriftSnapshot{Windows: total}
	if total == 0 {
		return s
	}
	s.NLL = math.Float64frombits(d.nllBits.Load()) / float64(d.count.Load())
	s.PIT = make([]float64, DriftPITBins)
	for b := range bins {
		s.PIT[b] = float64(bins[b]) / float64(total)
		if dev := math.Abs(s.PIT[b] - 1.0/DriftPITBins); dev > s.PITDeviation {
			s.PITDeviation = dev
		}
	}
	return s
}

// DriftBaseline is the training-time reference a streaming snapshot is
// judged against — the two Calibration fields drift can move.
type DriftBaseline struct {
	NLL          float64 `json:"nll"`
	PITDeviation float64 `json:"pit_deviation"`
}

// DriftVerdict is the judged state of one model's predictive honesty.
// The order is monotone in badness, so "worst across models" is a max.
type DriftVerdict int32

const (
	// DriftCold: too few scored windows to judge (startup, or a model
	// serving only synthetic requests with no observed delays).
	DriftCold DriftVerdict = iota
	DriftOK
	DriftWarn
	DriftFailing
)

func (v DriftVerdict) String() string {
	switch v {
	case DriftOK:
		return "ok"
	case DriftWarn:
		return "warn"
	case DriftFailing:
		return "failing"
	default:
		return "cold"
	}
}

// DriftPolicy sets how far a streaming scorecard may wander from its
// training-time baseline before the verdict degrades. Zero fields select
// defaults.
type DriftPolicy struct {
	// MinWindows gates judging: below it the verdict is DriftCold.
	// Default 128 — enough windows that PIT bin fractions have settled.
	MinWindows int64
	// NLLSlack is the tolerated mean-NLL excess over baseline (nats, in
	// the model's standardized units). Warn at 1×, fail at 2×. Default 0.5.
	NLLSlack float64
	// PITSlack is the tolerated PIT-deviation excess over baseline
	// (absolute bin-fraction units). Warn at 1×, fail at 2×. Default 0.08.
	PITSlack float64
}

// WithDefaults fills zero fields with the default policy.
func (p DriftPolicy) WithDefaults() DriftPolicy {
	if p.MinWindows <= 0 {
		p.MinWindows = 128
	}
	if p.NLLSlack <= 0 {
		p.NLLSlack = 0.5
	}
	if p.PITSlack <= 0 {
		p.PITSlack = 0.08
	}
	return p
}

// Judge compares a streaming snapshot against the training-time
// baseline. base == nil marks an artifact that predates embedded
// calibration: the NLL has no reference so only the PIT histogram is
// judged, against the uniform ideal (baseline deviation 0).
func (p DriftPolicy) Judge(s DriftSnapshot, base *DriftBaseline) DriftVerdict {
	p = p.WithDefaults()
	if s.Windows < p.MinWindows {
		return DriftCold
	}
	basePIT := 0.0
	score := 0.0
	if base != nil {
		basePIT = base.PITDeviation
		score = (s.NLL - base.NLL) / p.NLLSlack
	}
	if ps := (s.PITDeviation - basePIT) / p.PITSlack; ps > score {
		score = ps
	}
	switch {
	case score >= 2:
		return DriftFailing
	case score >= 1:
		return DriftWarn
	default:
		return DriftOK
	}
}
