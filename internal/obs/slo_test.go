package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// sloFixture builds a roller + engine over a fresh registry with a
// latency histogram and an error counter tracked, using 2 s / 4 s
// windows so tests need few ticks.
func sloFixture(t *testing.T) (*Registry, *Roller, *SLOEngine, *Histogram, *Counter) {
	t.Helper()
	r := NewRegistry()
	h := r.Histogram("lat")
	c := r.Counter("errs")
	ro := NewRoller(time.Second, 10)
	ro.TrackHistogram("lat", h)
	ro.TrackCounter("errs", c)
	e := NewSLOEngine(ro, 2*time.Second, 4*time.Second)
	return r, ro, e, h, c
}

func TestSLOBurnMath(t *testing.T) {
	_, ro, e, h, _ := sloFixture(t)
	// p99 < 1ms at target 0.9: error budget is 10%.
	e.Add(SLOObjective{
		Name: "lat", Hist: "lat",
		LatencyThreshold: time.Millisecond, Target: 0.9,
	})
	ro.Tick()
	// 20% of observations over threshold → burn 0.2/0.1 = 2 → warn.
	for i := 0; i < 80; i++ {
		h.Observe(1000) // fast: first bucket, well under 1ms
	}
	for i := 0; i < 20; i++ {
		h.Observe(int64(10 * time.Millisecond)) // slow
	}
	ro.Tick()
	sts := e.Eval()
	if len(sts) != 1 {
		t.Fatalf("statuses = %+v", sts)
	}
	st := sts[0]
	if st.State != SLOWarn {
		t.Fatalf("state = %v, want warn (burn %v/%v)", st.State, st.BurnShort, st.BurnLong)
	}
	if st.BurnShort < 1.5 || st.BurnShort > 2.5 {
		t.Fatalf("short burn = %v, want ≈2 (bucket interpolation slack)", st.BurnShort)
	}
	if st.Value <= 0 {
		t.Fatalf("value (bad fraction) = %v, want > 0", st.Value)
	}
	if e.Health() != SLOWarn {
		t.Fatalf("health = %v, want warn", e.Health())
	}
}

func TestSLOBothWindowsRule(t *testing.T) {
	_, ro, e, _, c := sloFixture(t)
	r2 := NewRegistry()
	total := r2.Counter("total")
	ro.TrackCounter("total", total)
	// Error ratio at target 0.5: budget 50%, so an all-errors tick burns 2.
	e.Add(SLOObjective{
		Name: "errs", BadCounter: "errs", TotalSource: "total", Target: 0.5,
	})
	ro.Tick()
	// Tick 1: 100% errors — both windows hot → warn.
	c.Add(10)
	total.Add(10)
	ro.Tick()
	if st := e.Eval()[0]; st.State != SLOWarn {
		t.Fatalf("after bad tick: %+v, want warn", st)
	}
	// Two clean ticks: the 2 s short window is now clean while the 4 s
	// long window still holds the incident. Both-windows rule: recovers.
	total.Add(20)
	ro.Tick()
	total.Add(20)
	ro.Tick()
	st := e.Eval()[0]
	if st.State != SLOOK {
		t.Fatalf("after recovery: %+v, want ok (short window clean)", st)
	}
	if st.BurnLong <= 0 {
		t.Fatalf("long burn = %v, want > 0 (incident still in window)", st.BurnLong)
	}
	if st.BurnShort != 0 {
		t.Fatalf("short burn = %v, want 0", st.BurnShort)
	}
}

func TestSLOZeroTraffic(t *testing.T) {
	_, ro, e, _, _ := sloFixture(t)
	e.Add(SLOObjective{Name: "lat", Hist: "lat", LatencyThreshold: time.Millisecond, Target: 0.99})
	e.Add(SLOObjective{Name: "errs", BadCounter: "errs", TotalSource: "lat", Target: 0.99})
	ro.Tick()
	ro.Tick()
	for _, st := range e.Eval() {
		if st.State != SLOOK || st.BurnShort != 0 || st.BurnLong != 0 {
			t.Fatalf("zero-traffic objective %q: %+v, want ok with zero burn", st.Name, st)
		}
	}
}

func TestSLOGaugeObjective(t *testing.T) {
	_, ro, e, _, _ := sloFixture(t)
	level := 0.0
	e.Add(SLOObjective{
		Name: "drift", Gauge: func() float64 { return level },
		WarnAt: 2, FailAt: 3,
	})
	ro.Tick()
	if st := e.Eval()[0]; st.State != SLOOK {
		t.Fatalf("level 0: %+v", st)
	}
	level = 2
	if st := e.Eval()[0]; st.State != SLOWarn || st.Value != 2 {
		t.Fatalf("level 2: %+v, want warn", st)
	}
	level = 3
	if st := e.Eval()[0]; st.State != SLOFailing {
		t.Fatalf("level 3: %+v, want failing", st)
	}
	if e.Health() != SLOFailing {
		t.Fatalf("health = %v", e.Health())
	}
}

func TestSLOTransitionsAlertAndRecover(t *testing.T) {
	Enable()
	defer Disable()
	var buf bytes.Buffer
	SetLogger(slog.New(NewLogHandler(&buf, slog.LevelInfo)))
	defer SetLogger(nil)

	ro := NewRoller(time.Second, 10)
	e := NewSLOEngine(ro, 2*time.Second, 4*time.Second)
	level := 5.0
	e.Add(SLOObjective{Name: "drift", Gauge: func() float64 { return level }, WarnAt: 2, FailAt: 3})

	e.Eval() // ok → failing: one alert
	e.Eval() // steady failing: no second alert
	level = 0
	e.Eval() // failing → ok: recovered

	logs := buf.String()
	if n := strings.Count(logs, `"msg":"slo alert"`); n != 1 {
		t.Fatalf("alert events = %d, want 1:\n%s", n, logs)
	}
	if !strings.Contains(logs, `"msg":"slo recovered"`) {
		t.Fatalf("no recovered event:\n%s", logs)
	}
	if !strings.Contains(logs, `"objective":"drift"`) || !strings.Contains(logs, `"prev":"ok"`) {
		t.Fatalf("alert attrs missing:\n%s", logs)
	}
	snap := Get().Snapshot()
	if snap.Counters[`obs.slo.alerts{objective="drift",state="failing"}`] != 1 {
		t.Fatalf("alerts counter: %v", snap.Counters)
	}
	if snap.Counters[`obs.slo.alerts{objective="drift",state="ok"}`] != 1 {
		t.Fatalf("recovery counter: %v", snap.Counters)
	}
	if v := snap.Gauges[`obs.slo.state{objective="drift"}`]; v != 0 {
		t.Fatalf("state gauge = %v, want 0 after recovery", v)
	}
}

func TestSLONilAndDefaults(t *testing.T) {
	var e *SLOEngine
	e.Add(SLOObjective{Name: "x"}) // no panic
	if e.Eval() != nil || e.Statuses() != nil || e.Health() != SLOOK {
		t.Fatal("nil engine returned non-zero results")
	}
	live := NewSLOEngine(NewRoller(time.Second, 10), 0, 0)
	if live.short != 10*time.Second || live.long != 60*time.Second {
		t.Fatalf("default windows = %v/%v", live.short, live.long)
	}
	live.Add(SLOObjective{Name: "x", BadCounter: "b", TotalSource: "t", Target: 0.99})
	if o := live.objs[0].obj; o.WarnBurn != 2 || o.FailBurn != 10 {
		t.Fatalf("default burns = %v/%v", o.WarnBurn, o.FailBurn)
	}
	if len(live.Statuses()) != 0 {
		t.Fatal("statuses before first Eval should be empty")
	}
}

func TestSLOStateJSON(t *testing.T) {
	out, err := json.Marshal(SLOStatus{Name: "x", State: SLOFailing})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"state":"failing"`) {
		t.Fatalf("marshal: %s", out)
	}
	var st SLOStatus
	if err := json.Unmarshal(out, &st); err != nil || st.State != SLOFailing {
		t.Fatalf("unmarshal: %+v, %v", st, err)
	}
	var bad SLOState
	if err := json.Unmarshal([]byte(`"bogus"`), &bad); err == nil {
		t.Fatal("unknown state should error")
	}
	if WorseSLO(SLOWarn, SLOOK) != SLOWarn || WorseSLO(SLOOK, SLOFailing) != SLOFailing {
		t.Fatal("WorseSLO ordering")
	}
}
