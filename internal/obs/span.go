package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Span is a timed, hierarchical region of the pipeline ("fig2" →
// "generate" → …). Spans are recorded into the registry when they End
// and exported by TraceJSON / BuildReport. A nil span (from a disabled
// registry) is a no-op on every method, so call sites need no guards.
//
// Lane model: a top-level span claims a display lane (the "tid" of the
// Chrome trace event) from a free list and returns it on End; child
// spans inherit their parent's lane. Concurrent top-level spans — the
// -parallel experiment mode, or the concurrent model trainings inside
// Table 1 and Fig 5 — therefore land on distinct lanes, while the
// sequential phases of one experiment stack on one lane in start order,
// which chrome://tracing and Perfetto render as a flame graph.
type Span struct {
	r      *Registry
	id     int64
	parent int64
	name   string
	path   string // "/"-joined ancestor chain, "table1/train"
	lane   int
	depth  int
	start  time.Time
	items  int64
	args   map[string]string
	ended  bool
}

// spanRec is the immutable record of a finished span.
type spanRec struct {
	ID     int64
	Parent int64
	Name   string
	Lane   int
	Depth  int
	Start  time.Duration // since registry start
	End    time.Duration
	Items  int64
	Args   map[string]string
}

// StartSpan opens a top-level span. Returns nil on a nil registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	r.spanMu.Lock()
	r.nextSpan++
	id := r.nextSpan
	var lane int
	if n := len(r.freeLanes); n > 0 {
		lane = r.freeLanes[n-1]
		r.freeLanes = r.freeLanes[:n-1]
	} else {
		lane = r.lanes
		r.lanes++
	}
	s := &Span{r: r, id: id, name: name, path: name, lane: lane}
	r.active = append(r.active, s)
	r.spanMu.Unlock()
	s.start = time.Now()
	return s
}

// StartSpan opens a top-level span on the installed registry; nil (a
// no-op span) when observability is disabled.
func StartSpan(name string) *Span { return Get().StartSpan(name) }

// Start opens a child span inheriting the parent's display lane. Returns
// nil on a nil span.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	s.r.spanMu.Lock()
	s.r.nextSpan++
	id := s.r.nextSpan
	child := &Span{
		r: s.r, id: id, parent: s.id, name: name, path: s.path + "/" + name,
		lane: s.lane, depth: s.depth + 1,
	}
	s.r.active = append(s.r.active, child)
	s.r.spanMu.Unlock()
	child.start = time.Now()
	return child
}

// Path returns the span's "/"-joined name chain from its top-level
// ancestor ("table1/train"). Empty on a nil span.
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// SetItems records how many work items the span processed (reported as
// the stage's item count). No-op on a nil span.
func (s *Span) SetItems(n int) {
	if s == nil {
		return
	}
	s.items = int64(n)
}

// SetArg attaches a key/value annotation (exported into the trace
// event's args and the run report). No-op on a nil span.
func (s *Span) SetArg(key, value string) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = map[string]string{}
	}
	s.args[key] = value
}

// End closes the span and records it. Safe to call on a nil span and
// idempotent on a live one.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	end := time.Now()
	r := s.r
	rec := spanRec{
		ID: s.id, Parent: s.parent, Name: s.name, Lane: s.lane, Depth: s.depth,
		Start: s.start.Sub(r.start), End: end.Sub(r.start),
		Items: s.items, Args: s.args,
	}
	r.spanMu.Lock()
	if r.spanLimit > 0 && len(r.spans) >= r.spanLimit {
		// Bounded retention (long-running servers): overwrite the ring
		// position of the oldest record. finishedSpans sorts by start
		// time, so readers are order-insensitive.
		r.spans[r.spanHead] = rec
		r.spanHead = (r.spanHead + 1) % r.spanLimit
	} else {
		r.spans = append(r.spans, rec)
	}
	if s.depth == 0 {
		r.freeLanes = append(r.freeLanes, s.lane)
	}
	for i := len(r.active) - 1; i >= 0; i-- {
		if r.active[i] == s {
			r.active = append(r.active[:i], r.active[i+1:]...)
			break
		}
	}
	r.spanMu.Unlock()
}

// SetSpanLimit bounds how many finished spans the registry retains;
// once the limit is reached, each new record overwrites the oldest.
// Offline experiment runs keep the default (0 = unbounded) so reports
// see every stage; a long-running server with per-request trace
// sampling sets a limit so sampled request spans cannot grow memory
// without bound. No-op on a nil registry.
func (r *Registry) SetSpanLimit(n int) {
	if r == nil || n < 0 {
		return
	}
	r.spanMu.Lock()
	if len(r.spans) > n && n > 0 {
		// Keep the newest n records so the ring invariant holds.
		r.spans = append([]spanRec(nil), r.spans[len(r.spans)-n:]...)
	}
	r.spanLimit = n
	r.spanHead = 0
	r.spanMu.Unlock()
}

// currentSpan returns the path and leaf name of the most recently started
// still-open span — the log handler's best-effort notion of "the stage
// this record came from". Empty strings when no span is open (or on a nil
// registry).
func (r *Registry) currentSpan() (path, stage string) {
	if r == nil {
		return "", ""
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	if n := len(r.active); n > 0 {
		s := r.active[n-1]
		return s.path, s.name
	}
	return "", ""
}

// finishedSpans returns a copy of all recorded spans sorted by start
// time (ties broken by id, so nesting order is stable).
func (r *Registry) finishedSpans() []spanRec {
	if r == nil {
		return nil
	}
	r.spanMu.Lock()
	out := append([]spanRec(nil), r.spans...)
	r.spanMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// traceEvent is one Chrome trace-event object ("X" = complete event;
// timestamps and durations are microseconds).
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the JSON-object form of the Chrome trace-event format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// TraceJSON writes every finished span as Chrome trace-event JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev. Writes an
// empty-but-valid trace on a nil registry.
func (r *Registry) TraceJSON(w io.Writer) error {
	f := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	for _, sp := range r.finishedSpans() {
		args := sp.Args
		if sp.Items > 0 {
			args = map[string]string{"items": fmt.Sprintf("%d", sp.Items)}
			for k, v := range sp.Args {
				args[k] = v
			}
		}
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: sp.Name,
			Cat:  "ibox",
			Ph:   "X",
			Ts:   float64(sp.Start) / 1e3,
			Dur:  float64(sp.End-sp.Start) / 1e3,
			Pid:  1,
			Tid:  sp.Lane,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}
