package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"serve.request_ns": "serve_request_ns",
		"par.pool-depth":   "par_pool_depth",
		"9lives":           "_9lives",
		"ok_name":          "ok_name",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := counterExpoName("serve.requests"); got != "serve_requests_total" {
		t.Fatalf("counterExpoName = %q", got)
	}
	if got := counterExpoName("already_total"); got != "already_total" {
		t.Fatalf("counterExpoName(already_total) = %q", got)
	}
}

func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.requests").Add(3)
	r.Gauge("serve.inflight").Set(2)
	h := r.Histogram("serve.simulate_ns")
	h.Observe(1500) // bucket with bound 2048
	h.Observe(5000)
	r.CounterVec("serve.http_requests", "route", "status").With("simulate", "2xx").Add(3)
	hv := r.HistogramVec("serve.request_ns", "route", "model")
	hv.With("simulate", "m.json").Observe(2500)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	fams, samples, err := ValidateExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("own exposition failed validation: %v\n%s", err, out)
	}
	if fams < 5 || samples == 0 {
		t.Fatalf("families=%d samples=%d, want >=5 families", fams, samples)
	}
	for _, want := range []string{
		"# TYPE serve_requests_total counter",
		"serve_requests_total 3",
		"# TYPE serve_inflight gauge",
		"serve_inflight 2",
		"# TYPE serve_simulate_ns histogram",
		`serve_simulate_ns_bucket{le="2048"} 1`,
		`serve_simulate_ns_bucket{le="+Inf"} 2`,
		"serve_simulate_ns_sum 6500",
		"serve_simulate_ns_count 2",
		`serve_http_requests_total{route="simulate",status="2xx"} 3`,
		`serve_request_ns_bucket{route="simulate",model="m.json",le="+Inf"} 1`,
		`serve_request_ns_count{route="simulate",model="m.json"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Families are sorted by exposition name, so scrapes are diffable.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var typeNames []string
	for _, l := range lines {
		if strings.HasPrefix(l, "# TYPE ") {
			typeNames = append(typeNames, strings.Fields(l)[2])
		}
	}
	for i := 1; i < len(typeNames); i++ {
		if typeNames[i] < typeNames[i-1] {
			t.Fatalf("TYPE lines out of order: %q before %q", typeNames[i-1], typeNames[i])
		}
	}
}

func TestPrometheusHandler(t *testing.T) {
	Enable()
	defer Disable()
	Get().Counter("x").Add(1)
	rec := httptest.NewRecorder()
	PrometheusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1\n") {
		t.Fatalf("scrape missing counter:\n%s", rec.Body.String())
	}

	// Disabled registry: scrape succeeds and is empty.
	Disable()
	rec = httptest.NewRecorder()
	PrometheusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Fatalf("disabled scrape: code=%d body=%q", rec.Code, rec.Body.String())
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":           "orphan 1\n",
		"bad name":          "# TYPE 1bad counter\n",
		"bad type":          "# TYPE x flute\n",
		"dup TYPE":          "# TYPE x counter\n# TYPE x counter\n",
		"bad value":         "# TYPE x counter\nx pear\n",
		"unquoted label":    "# TYPE x counter\nx{k=v} 1\n",
		"bad label name":    "# TYPE x counter\nx{1k=\"v\"} 1\n",
		"unterminated":      "# TYPE x counter\nx{k=\"v\" 1\n",
		"decreasing hist":   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
		"count mismatch":    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\n",
		"bucket missing le": "# TYPE h histogram\nh_bucket{k=\"v\"} 3\n",
	}
	for name, in := range cases {
		if _, _, err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated but should not:\n%s", name, in)
		}
	}
	// And the happy path with a timestamp and HELP comment.
	ok := "# HELP x a counter\n# TYPE x counter\nx{k=\"v\"} 1 1700000000\n"
	if _, _, err := ValidateExposition(strings.NewReader(ok)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestReadExposition(t *testing.T) {
	in := `# HELP serve_requests_total requests
# TYPE serve_requests_total counter
serve_requests_total 42

serve_http{route="simulate",class="2xx"} 7
serve_win_p99_ns_10s 1.5e+06
`
	samples, err := ReadExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("samples = %d, want 3: %+v", len(samples), samples)
	}
	if samples[0].Name != "serve_requests_total" || samples[0].Value != 42 || samples[0].Labels != "" {
		t.Fatalf("sample 0: %+v", samples[0])
	}
	if samples[1].Labels != `route="simulate",class="2xx"` {
		t.Fatalf("sample 1 labels: %q", samples[1].Labels)
	}
	if samples[2].Value != 1.5e6 {
		t.Fatalf("sample 2 value: %v", samples[2].Value)
	}
	if _, err := ReadExposition(strings.NewReader("not a sample line at all {")); err == nil {
		t.Fatal("malformed line should error")
	}
}

// ReadExposition round-trips what WritePrometheus emits.
func TestReadExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.reqs").Add(3)
	r.GaugeVec("serve.drift.state", "model").With("m.json").Set(2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ReadExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]float64{}
	for _, s := range samples {
		found[s.Name] = s.Value
	}
	if found["serve_reqs_total"] != 3 {
		t.Fatalf("counter sample missing: %+v", found)
	}
	if found["serve_drift_state"] != 2 {
		t.Fatalf("gauge sample missing: %+v", found)
	}
}
