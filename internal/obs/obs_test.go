package obs

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"
)

// TestDisabledZeroAllocs pins the "disabled means free" half of the
// package contract: with no registry installed, the full instrumentation
// surface — handle lookup, counter/gauge/histogram updates, span trees —
// must allocate nothing.
func TestDisabledZeroAllocs(t *testing.T) {
	Disable()
	SetLogger(nil)
	if got := testing.AllocsPerRun(100, func() {
		Get().Counter("x").Add(1)
		Get().Gauge("y").Set(2.5)
		Get().Histogram("z").Observe(1234)
		Get().Histogram("z").ObserveSince(time.Time{})
		sp := StartSpan("stage")
		child := sp.Start("substage")
		child.SetItems(4)
		child.SetArg("k", "v")
		child.End()
		sp.End()
		if l := Logger(); l != nil {
			l.Info("never reached when disabled")
		}
	}); got != 0 {
		t.Errorf("disabled observability path allocates %.0f objects per run, want 0", got)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(3)
	c.Add(4)
	if got := c.Value(); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	if r.Counter("a") != c {
		t.Error("same name should return the same counter handle")
	}
	g := r.Gauge("b")
	g.Set(1.5)
	g.Set(-2.25)
	if got := g.Value(); got != -2.25 {
		t.Errorf("gauge = %g, want -2.25", got)
	}

	// Nil handles are inert.
	var nc *Counter
	var ng *Gauge
	nc.Add(1)
	ng.Set(1)
	if nc.Value() != 0 || ng.Value() != 0 {
		t.Error("nil handles should read as zero")
	}
}

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {1023, 0},
		{1024, 1}, {2047, 1},
		{2048, 2}, {4095, 2},
		{4096, 3},
		{1 << 62, histBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if histBound(0) != 1024 || histBound(1) != 2048 {
		t.Errorf("histBound(0,1) = %d,%d, want 1024,2048", histBound(0), histBound(1))
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 90 observations in [1024, 2048), 10 in [1<<20, 1<<21): p50 must land
	// in the first bucket's bounds and p99 in the second's.
	for i := 0; i < 90; i++ {
		h.Observe(1500)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 << 20)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got, want := h.Sum(), int64(90*1500+10*(1<<20)); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	if p50 := h.Quantile(0.50); p50 < 1024 || p50 >= 2048 {
		t.Errorf("p50 = %g, want within [1024, 2048)", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 1<<20 || p99 >= 1<<21 {
		t.Errorf("p99 = %g, want within [2^20, 2^21)", p99)
	}
	// Quantiles are monotone in q.
	prev := -1.0
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%g) = %g < Quantile at lower q = %g", q, v, prev)
		}
		prev = v
	}

	s := h.Summary()
	if s.Count != 100 || s.Mean != float64(h.Sum())/100 {
		t.Errorf("summary = %+v, want count 100 mean %g", s, float64(h.Sum())/100)
	}

	var empty Histogram
	if empty.Quantile(0.5) != 0 || (empty.Summary() != HistogramSummary{}) {
		t.Error("empty histogram should read as zero")
	}
	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram should be inert")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(0.5)
	r.Histogram("h").Observe(4000)
	snap := r.Snapshot()
	if snap.Counters["c"] != 5 || snap.Gauges["g"] != 0.5 || snap.Histograms["h"].Count != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	var nilR *Registry
	empty := nilR.Snapshot()
	if len(empty.Counters) != 0 || len(empty.Gauges) != 0 || len(empty.Histograms) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
}

func TestEnableDisable(t *testing.T) {
	defer Disable()
	if Enabled() {
		t.Fatal("registry unexpectedly installed at test start")
	}
	r := Enable()
	if !Enabled() || Get() != r {
		t.Error("Enable should install the returned registry")
	}
	Get().Counter("k").Add(2)
	if r.Counter("k").Value() != 2 {
		t.Error("global handle should write into the installed registry")
	}
	Disable()
	if Enabled() || Get() != nil {
		t.Error("Disable should uninstall the registry")
	}
	if StartSpan("x") != nil {
		t.Error("StartSpan on a disabled registry should return nil")
	}
}

func TestSpanNestingAndLanes(t *testing.T) {
	r := NewRegistry()
	top := r.StartSpan("outer")
	child := top.Start("inner")
	child.SetItems(3)
	child.SetArg("profile", "test")
	child.End()
	child.End() // idempotent
	top.End()
	next := r.StartSpan("after") // sequential: should reuse the freed lane
	next.End()

	spans := r.finishedSpans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]spanRec{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	outer, inner, after := byName["outer"], byName["inner"], byName["after"]
	if inner.Parent != outer.ID || inner.Depth != 1 || inner.Lane != outer.Lane {
		t.Errorf("child span should nest under parent: inner=%+v outer=%+v", inner, outer)
	}
	if inner.Items != 3 || inner.Args["profile"] != "test" {
		t.Errorf("child annotations lost: %+v", inner)
	}
	if after.Lane != outer.Lane {
		t.Errorf("sequential top-level span should reuse lane %d, got %d", outer.Lane, after.Lane)
	}
	if inner.Start < outer.Start || inner.End > outer.End {
		t.Errorf("child [%v,%v] should be contained in parent [%v,%v]",
			inner.Start, inner.End, outer.Start, outer.End)
	}

	// Concurrent top-level spans get distinct lanes.
	a := r.StartSpan("a")
	b := r.StartSpan("b")
	if a.lane == b.lane {
		t.Errorf("concurrent top-level spans share lane %d", a.lane)
	}
	a.End()
	b.End()
}

func TestTraceJSON(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("stage")
	sp.Start("sub").End()
	sp.End()

	var buf bytes.Buffer
	if err := r.TraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != 2 || f.DisplayTimeUnit != "ms" {
		t.Fatalf("trace = %+v", f)
	}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" || ev.Pid != 1 || ev.Dur < 0 {
			t.Errorf("malformed event %+v", ev)
		}
	}

	// A nil registry still writes an empty-but-valid trace.
	buf.Reset()
	var nilR *Registry
	if err := nilR.TraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil-registry trace is not valid JSON: %v", err)
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("stage")
	gen := sp.Start("generate")
	gen.SetItems(8)
	gen.End()
	sp.End()
	// Worker utilization = item_ns sum / capacity_ns.
	r.Histogram(MetricParItemNs).Observe(3_000_000)
	r.Counter(MetricParCapacityNs).Add(4_000_000)
	r.Counter("pantheon.traces").Add(8)

	rep := r.BuildReport()
	if got, want := rep.WorkerUtilization, 0.75; got != want {
		t.Errorf("utilization = %g, want %g", got, want)
	}
	if len(rep.Stages) != 2 || rep.Stages[0].Name != "stage" || rep.Stages[1].Items != 8 {
		t.Errorf("stages = %+v", rep.Stages)
	}
	if rep.GoMaxProcs < 1 || rep.GeneratedAt == "" {
		t.Errorf("report metadata missing: %+v", rep)
	}

	path := filepath.Join(t.TempDir(), "RUN_REPORT.json")
	if err := r.WriteReport(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Counters["pantheon.traces"] != 8 || len(loaded.Stages) != 2 ||
		loaded.Histograms[MetricParItemNs].Count != 1 {
		t.Errorf("loaded report = %+v", loaded)
	}

	// Nil registry: BuildReport works and is empty.
	var nilR *Registry
	empty := nilR.BuildReport()
	if empty.WorkerUtilization != 0 || len(empty.Stages) != 0 {
		t.Errorf("nil report = %+v", empty)
	}
}
