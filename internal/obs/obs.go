// Package obs is the repository's observability layer: metrics, spans
// and run reports for the experiment pipeline (generate → estimate →
// train → simulate → evaluate), with zero external dependencies.
//
// The design contract, in order of importance:
//
//   - Measurement never affects results. No instrumented code path reads
//     a metric, a clock value recorded here, or any other observability
//     state to make a decision, so the serial ≡ parallel determinism
//     guarantee of internal/par is preserved bit-for-bit whether the
//     layer is enabled or disabled (see the determinism tests in
//     internal/experiments).
//   - Disabled means free. When no registry is installed, Get returns
//     nil and every handle constructor returns a nil pointer whose
//     methods are no-ops; the hot path pays one predictable branch and
//     zero allocations (asserted by testing.AllocsPerRun in the tests).
//     Instrumented call sites also gate their time.Now calls on the
//     handle being non-nil, so a disabled run takes no clock readings.
//   - Enabled means cheap. Counter.Add and Gauge.Set are one atomic op;
//     Histogram.Observe is a bounds computation plus three atomic adds.
//     No locks on the hot path — the registry mutex is only taken when a
//     handle is first created (callers hoist handle lookup out of their
//     per-item loops) and when spans finish.
//
// The layer has three faces:
//
//   - metrics — counters, gauges and fixed-bucket histograms with
//     quantile readout, named like "par.item_ns" (see Registry);
//   - spans — hierarchical timed regions of the pipeline, exportable as
//     Chrome trace-event JSON for chrome://tracing / Perfetto
//     (see Span and Registry.TraceJSON);
//   - the run report — a structured end-of-run summary (RUN_REPORT.json)
//     with per-stage wall time, items processed, worker utilization and
//     histogram summaries (see Registry.BuildReport).
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// global holds the installed registry; nil means observability is
// disabled (the default).
var global atomic.Pointer[Registry]

// Enable installs a fresh registry and returns it. Any previously
// installed registry keeps its recorded data but receives no new
// measurements.
func Enable() *Registry {
	r := NewRegistry()
	global.Store(r)
	return r
}

// Disable uninstalls the registry; subsequent measurements are no-ops.
func Disable() { global.Store(nil) }

// Get returns the installed registry, or nil when disabled. All Registry
// methods are nil-receiver-safe, so callers can chain unconditionally:
// obs.Get().Counter("x").Add(1) costs one branch when disabled.
func Get() *Registry { return global.Load() }

// Enabled reports whether a registry is installed.
func Enabled() bool { return global.Load() != nil }

// Registry owns every metric and span of one observed run. The zero
// value is not usable; construct with NewRegistry (or Enable).
type Registry struct {
	start time.Time

	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec

	spanMu    sync.Mutex
	nextSpan  int64
	spans     []spanRec
	spanLimit int     // max retained finished spans; 0 = unbounded
	spanHead  int     // ring overwrite position once the limit is reached
	active    []*Span // open spans, in start order (see currentSpan)
	freeLanes []int
	lanes     int

	fidMu    sync.Mutex
	fidelity []Fidelity
}

// NewRegistry returns an empty registry clocked from now. Most callers
// want Enable, which also installs it globally.
func NewRegistry() *Registry {
	return &Registry{
		start:       time.Now(),
		counters:    map[string]*Counter{},
		gauges:      map[string]*Gauge{},
		hists:       map[string]*Histogram{},
		counterVecs: map[string]*CounterVec{},
		gaugeVecs:   map[string]*GaugeVec{},
		histVecs:    map[string]*HistogramVec{},
	}
}

// Start returns the registry's epoch (the instant NewRegistry ran).
func (r *Registry) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a no-op handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil handle.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter; 0 on a nil handle.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated last-value float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil handle.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Add atomically adjusts the gauge by delta; no-op on a nil handle. It
// makes a gauge usable as a level meter (queue depth, in-flight count)
// maintained by concurrent increments and decrements.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(floatFromBits(old)+delta)) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value (a
// running-maximum gauge, e.g. the deepest nested fan-out observed).
// No-op on a nil handle.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if floatFromBits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, floatBits(v)) {
			return
		}
	}
}

// Value reads the gauge; 0 on a nil handle.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFromBits(g.bits.Load())
}

// Histogram bucket layout: power-of-two bounds starting at 1 µs. Bucket
// b counts observations v (in nanoseconds, or any int64 unit) with
// histBound(b-1) ≤ v < histBound(b); the final bucket is unbounded.
// 1 µs · 2^31 ≈ 36 minutes, far beyond any per-item latency here.
const (
	histFirstBound = 1024 // ns; everything below lands in bucket 0
	histBuckets    = 33
)

// histBound returns the exclusive upper bound of bucket b (the last
// bucket has none).
func histBound(b int) int64 { return histFirstBound << b }

// histBucket maps an observation to its bucket index.
func histBucket(v int64) int {
	if v < histFirstBound {
		return 0
	}
	// bits.Len64 of v/histFirstBound: 1 for [1024,2048), 2 for
	// [2048,4096), …
	b := bits.Len64(uint64(v) / histFirstBound)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Histogram is a fixed-bucket latency histogram with atomic updates and
// approximate quantile readout. Values are int64 and conventionally
// nanoseconds (metric names end in "_ns").
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value. No-op on a nil handle.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[histBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed time since t0 in nanoseconds. No-op
// (and no clock read) on a nil handle.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// Count returns the number of observations; 0 on a nil handle.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations; 0 on a nil handle.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// BucketCounts copies the current per-bucket observation counts into
// dst (allocation-free; bucket b's bound is HistogramBound(b)). No-op
// on a nil handle.
func (h *Histogram) BucketCounts(dst *[histBuckets]int64) {
	if h == nil {
		return
	}
	for i := range dst {
		dst[i] = h.buckets[i].Load()
	}
}

// HistogramBuckets is the number of buckets every Histogram has.
const HistogramBuckets = histBuckets

// HistogramBound returns bucket b's exclusive upper bound in the
// histogram's native unit (the last bucket is unbounded and reports the
// largest finite bound).
func HistogramBound(b int) int64 { return histBound(b) }

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the containing bucket. 0 on a nil or empty
// handle.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var counts [histBuckets]int64
	h.BucketCounts(&counts)
	return quantileFromCounts(&counts, q)
}

// quantileFromCounts interpolates the q-quantile from a bucket-count
// array — shared by live histograms and the rolling-window deltas.
func quantileFromCounts(counts *[histBuckets]int64, q float64) float64 {
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for b, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || b == histBuckets-1 {
			lo, hi := float64(0), float64(histBound(b))
			if b > 0 {
				lo = float64(histBound(b - 1))
			}
			if b == histBuckets-1 {
				// Unbounded tail: report its lower edge.
				return lo
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return float64(histBound(histBuckets - 1))
}

// HistogramSummary is the JSON-facing digest of a histogram: count,
// sum, mean and interpolated quantiles, in the histogram's native unit
// (nanoseconds by convention).
type HistogramSummary struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum_ns,omitempty"`
	Mean  float64 `json:"mean_ns"`
	P50   float64 `json:"p50_ns"`
	P90   float64 `json:"p90_ns"`
	P99   float64 `json:"p99_ns"`
	Max   float64 `json:"max_ns"`
}

// Summary digests the histogram. Zero value on a nil or empty handle.
func (h *Histogram) Summary() HistogramSummary {
	if h == nil || h.Count() == 0 {
		return HistogramSummary{}
	}
	n := h.Count()
	return HistogramSummary{
		Count: n,
		Sum:   h.Sum(),
		Mean:  float64(h.Sum()) / float64(n),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Quantile(1),
	}
}

// Snapshot is a point-in-time copy of every metric, suitable for expvar
// publication and report building.
type Snapshot struct {
	Counters   map[string]int64            `json:"counters"`
	Gauges     map[string]float64          `json:"gauges"`
	Histograms map[string]HistogramSummary `json:"histograms"`
}

// Snapshot copies all current metric values. Labeled families flatten
// into the same maps under `name{k1="v1",...}` keys (declared key
// order), so every consumer — expvar, run report, regression gate —
// sees one namespace. Empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSummary{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Summary()
	}
	for name, cv := range r.counterVecs {
		for _, c := range cv.v.children() {
			s.Counters[name+"{"+labelString(cv.v.keys, c.vals)+"}"] = c.h.Value()
		}
	}
	for name, gv := range r.gaugeVecs {
		for _, c := range gv.v.children() {
			s.Gauges[name+"{"+labelString(gv.v.keys, c.vals)+"}"] = c.h.Value()
		}
	}
	for name, hv := range r.histVecs {
		for _, c := range hv.v.children() {
			s.Histograms[name+"{"+labelString(hv.v.keys, c.vals)+"}"] = c.h.Summary()
		}
	}
	return s
}
