package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// decodeLines parses each JSON log line written to buf.
func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// TestLogHandlerSpanTagging verifies the core of the structured-log
// design: records emitted inside a span carry its full path and leaf
// stage, records outside any span carry neither.
func TestLogHandlerSpanTagging(t *testing.T) {
	defer Disable()
	defer SetLogger(nil)
	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(&buf, slog.LevelDebug))
	SetLogger(logger)
	r := Enable()

	logger.Info("outside")
	sp := r.StartSpan("table1")
	child := sp.Start("train")
	logger.Info("epoch", "epoch", 3, "loss", 1.25)
	child.End()
	sp.End()

	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2", len(lines))
	}
	outside, inside := lines[0], lines[1]
	if _, ok := outside["span"]; ok {
		t.Errorf("record outside any span carries span attr: %v", outside)
	}
	if inside["span"] != "table1/train" || inside["stage"] != "train" {
		t.Errorf("span tagging = span:%v stage:%v, want table1/train + train", inside["span"], inside["stage"])
	}
	if inside["msg"] != "epoch" || inside["epoch"] != float64(3) || inside["loss"] != 1.25 {
		t.Errorf("record payload mangled: %v", inside)
	}
}

// TestLogHandlerWithoutRegistry: a logger can be installed with the
// metrics registry disabled; records simply carry no span attributes.
func TestLogHandlerWithoutRegistry(t *testing.T) {
	defer SetLogger(nil)
	Disable()
	var buf bytes.Buffer
	SetLogger(slog.New(NewLogHandler(&buf, slog.LevelInfo)))
	Logger().Info("hello")
	lines := decodeLines(t, &buf)
	if len(lines) != 1 || lines[0]["msg"] != "hello" {
		t.Fatalf("lines = %v", lines)
	}
	if _, ok := lines[0]["span"]; ok {
		t.Error("no registry installed, record should carry no span attr")
	}
}

func TestLogHandlerLevelAndWrappers(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(&buf, slog.LevelWarn))
	logger.Info("dropped")
	logger.Warn("kept")
	lines := decodeLines(t, &buf)
	if len(lines) != 1 || lines[0]["msg"] != "kept" {
		t.Fatalf("level filtering broken: %v", lines)
	}

	// WithAttrs / WithGroup must preserve the span-tagging wrapper.
	buf.Reset()
	defer Disable()
	defer SetLogger(nil)
	r := Enable()
	sp := r.StartSpan("fig2")
	logger.With("worker", 7).WithGroup("g").Warn("inside", "k", "v")
	sp.End()
	lines = decodeLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	rec := lines[0]
	if rec["worker"] != float64(7) {
		t.Errorf("WithAttrs attr lost: %v", rec)
	}
	g, ok := rec["g"].(map[string]any)
	if !ok || g["k"] != "v" {
		t.Errorf("WithGroup structure lost: %v", rec)
	}
	// Span attrs are added at Handle time, after the group opens — they
	// land inside the group but must still be present.
	if g["span"] != "fig2" && rec["span"] != "fig2" {
		t.Errorf("span attr missing after WithGroup: %v", rec)
	}
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError,
		"bogus": slog.LevelInfo, "": slog.LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLogLevel(in); got != want {
			t.Errorf("ParseLogLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

// TestFidelityRecords pins the registry-side fidelity plumbing: nil-safe
// recording, copy-on-read, and inclusion in the built report.
func TestFidelityRecords(t *testing.T) {
	var nilR *Registry
	nilR.RecordFidelity(Fidelity{Label: "x"}) // must not panic
	if nilR.FidelityRecords() != nil {
		t.Error("nil registry should report no fidelity records")
	}

	r := NewRegistry()
	r.RecordFidelity(Fidelity{Label: "table1/no-ct", HeldOutNLL: 1.5})
	r.RecordFidelity(Fidelity{Label: "table1/with-ct", HeldOutNLL: 1.2})
	recs := r.FidelityRecords()
	if len(recs) != 2 || recs[0].Label != "table1/no-ct" || recs[1].HeldOutNLL != 1.2 {
		t.Fatalf("records = %+v", recs)
	}
	recs[0].Label = "mutated"
	if r.FidelityRecords()[0].Label != "table1/no-ct" {
		t.Error("FidelityRecords must return a copy")
	}
	rep := r.BuildReport()
	if len(rep.Fidelity) != 2 || rep.Fidelity[1].Label != "table1/with-ct" {
		t.Errorf("report fidelity = %+v", rep.Fidelity)
	}
}
