package obs

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"
)

// SLO burn-rate engine. An objective declares "fraction of good events
// ≥ Target" (p99 latency under a bound, error ratio under a budget) or
// "level below a threshold" (worst model-drift verdict); the engine
// evaluates every objective over a Roller's short and long trailing
// windows after each tick. Event objectives use the classic multi-window
// burn rate
//
//	burn = badFraction / (1 − Target)
//
// — burn 1 spends the error budget exactly at the sustainable rate, burn
// 10 spends it 10× too fast. An objective degrades only when *both*
// windows burn hot: the long window proves the problem is real, the
// short window proves it is still happening (so recovered incidents
// clear quickly). Level objectives map the current value through
// WarnAt/FailAt directly.
//
// Evaluations publish obs.slo.burn{objective,window} and
// obs.slo.state{objective} gauges plus an obs.slo.alerts{objective,state}
// transition counter, and every state change emits one structured slog
// event through Logger() ("slo alert" on degrade, "slo recovered" on
// improve). The engine owns no goroutine: the owner calls Eval after
// each Roller.Tick.

// SLOState is an objective's (or the whole server's) judged state.
// Ordered by badness, so the worst of several states is a max.
type SLOState int

const (
	SLOOK SLOState = iota
	SLOWarn
	SLOFailing
)

func (s SLOState) String() string {
	switch s {
	case SLOWarn:
		return "warn"
	case SLOFailing:
		return "failing"
	default:
		return "ok"
	}
}

// MarshalJSON renders the state as its string form ("ok", "warn",
// "failing") for /healthz-style JSON bodies.
func (s SLOState) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the string form back (dashboard clients decode
// /healthz bodies into the same types the server encodes).
func (s *SLOState) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"warn"`:
		*s = SLOWarn
	case `"failing"`:
		*s = SLOFailing
	case `"ok"`:
		*s = SLOOK
	default:
		return fmt.Errorf("obs: unknown SLO state %s", b)
	}
	return nil
}

// WorseSLO returns the worse of two states.
func WorseSLO(a, b SLOState) SLOState {
	if b > a {
		return b
	}
	return a
}

// SLOObjective declares one objective. Exactly one of the three shapes
// applies: latency (Hist + LatencyThreshold), ratio (BadCounter +
// TotalSource), or level (Gauge + WarnAt/FailAt).
type SLOObjective struct {
	Name string

	// Latency shape: bad events are the named tracked histogram's
	// observations above LatencyThreshold (native unit via the
	// threshold's nanoseconds).
	Hist             string
	LatencyThreshold time.Duration

	// Ratio shape: bad events from the named tracked counter, total
	// events from TotalSource (a tracked counter or histogram).
	BadCounter  string
	TotalSource string

	// Target is the good-event fraction the objective promises, e.g.
	// 0.99. Required for the event shapes.
	Target float64

	// Burn thresholds for the event shapes; both windows must exceed
	// one to change state. Defaults 2 (warn) and 10 (failing).
	WarnBurn, FailBurn float64

	// Level shape: Gauge is sampled at each Eval; the state is failing
	// at ≥ FailAt, warn at ≥ WarnAt.
	Gauge          func() float64
	WarnAt, FailAt float64
}

// SLOStatus is one objective's last evaluation.
type SLOStatus struct {
	Name      string   `json:"name"`
	State     SLOState `json:"state"`
	BurnShort float64  `json:"burn_short"` // event shapes; 0 for levels
	BurnLong  float64  `json:"burn_long"`
	// Value is the long-window bad fraction (event shapes) or the
	// sampled level (level shape).
	Value float64 `json:"value"`
}

type sloEntry struct {
	obj  SLOObjective
	last SLOState
}

// SLOEngine evaluates objectives over a Roller. Construct with
// NewSLOEngine; all methods are safe for concurrent use and nil-safe.
type SLOEngine struct {
	ro          *Roller
	short, long time.Duration
	shortLbl    string
	longLbl     string

	mu   sync.Mutex
	objs []*sloEntry
	last []SLOStatus

	burn   *GaugeVec   // obs.slo.burn{objective,window}
	state  *GaugeVec   // obs.slo.state{objective}
	alerts *CounterVec // obs.slo.alerts{objective,state}
}

// NewSLOEngine builds an engine over ro evaluating the given short and
// long windows (<= 0 select 10 s and 60 s). Metric families register on
// the installed registry; with observability disabled the engine still
// evaluates (verdicts and alerts work, metrics are no-ops).
func NewSLOEngine(ro *Roller, short, long time.Duration) *SLOEngine {
	if short <= 0 {
		short = 10 * time.Second
	}
	if long <= 0 {
		long = 60 * time.Second
	}
	e := &SLOEngine{
		ro: ro, short: short, long: long,
		shortLbl: WindowLabel(short), longLbl: WindowLabel(long),
	}
	if r := Get(); r != nil {
		e.burn = r.GaugeVec("obs.slo.burn", "objective", "window")
		e.state = r.GaugeVec("obs.slo.state", "objective")
		e.alerts = r.CounterVec("obs.slo.alerts", "objective", "state")
	}
	return e
}

// Add registers an objective. Objectives added after evaluations start
// join at the next Eval.
func (e *SLOEngine) Add(o SLOObjective) {
	if e == nil {
		return
	}
	if o.WarnBurn <= 0 {
		o.WarnBurn = 2
	}
	if o.FailBurn <= 0 {
		o.FailBurn = 10
	}
	e.mu.Lock()
	e.objs = append(e.objs, &sloEntry{obj: o})
	e.mu.Unlock()
}

// badFraction returns the objective's bad-event fraction over window.
// Zero traffic is zero burn: a quiet window cannot violate an SLO.
func (e *SLOEngine) badFraction(o *SLOObjective, w time.Duration) float64 {
	switch {
	case o.Hist != "":
		over, total := e.ro.CountOver(o.Hist, w, int64(o.LatencyThreshold))
		if total == 0 {
			return 0
		}
		return float64(over) / float64(total)
	case o.BadCounter != "":
		total := e.ro.WindowCount(o.TotalSource, w)
		if total == 0 {
			return 0
		}
		bad := e.ro.WindowCount(o.BadCounter, w)
		return float64(bad) / float64(total)
	}
	return 0
}

// Eval re-evaluates every objective, publishes metrics, logs state
// transitions, and returns the statuses. Call after each Roller.Tick.
func (e *SLOEngine) Eval() []SLOStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOStatus, 0, len(e.objs))
	for _, ent := range e.objs {
		o := &ent.obj
		st := SLOStatus{Name: o.Name}
		if o.Gauge != nil {
			st.Value = o.Gauge()
			switch {
			case st.Value >= o.FailAt:
				st.State = SLOFailing
			case st.Value >= o.WarnAt:
				st.State = SLOWarn
			}
		} else {
			budget := 1 - o.Target
			if budget <= 0 {
				budget = 1e-9
			}
			badShort := e.badFraction(o, e.short)
			badLong := e.badFraction(o, e.long)
			st.BurnShort = badShort / budget
			st.BurnLong = badLong / budget
			st.Value = badLong
			// Both windows must burn hot: long proves it is real,
			// short proves it is still happening.
			worst := st.BurnShort
			if st.BurnLong < worst {
				worst = st.BurnLong
			}
			switch {
			case worst >= o.FailBurn:
				st.State = SLOFailing
			case worst >= o.WarnBurn:
				st.State = SLOWarn
			}
		}
		e.burn.With(o.Name, e.shortLbl).Set(st.BurnShort)
		e.burn.With(o.Name, e.longLbl).Set(st.BurnLong)
		e.state.With(o.Name).Set(float64(st.State))
		if st.State != ent.last {
			e.alerts.With(o.Name, st.State.String()).Add(1)
			if l := Logger(); l != nil {
				lvl := slog.LevelInfo
				msg := "slo recovered"
				if st.State > ent.last {
					msg = "slo alert"
					lvl = slog.LevelWarn
					if st.State == SLOFailing {
						lvl = slog.LevelError
					}
				}
				l.Log(context.Background(), lvl, msg,
					"objective", o.Name,
					"state", st.State.String(),
					"prev", ent.last.String(),
					"burn_"+e.shortLbl, fmt.Sprintf("%.2f", st.BurnShort),
					"burn_"+e.longLbl, fmt.Sprintf("%.2f", st.BurnLong),
					"value", st.Value,
				)
			}
			ent.last = st.State
		}
		out = append(out, st)
	}
	e.last = out
	return out
}

// Statuses returns a copy of the last evaluation (nil before the first).
func (e *SLOEngine) Statuses() []SLOStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOStatus, len(e.last))
	copy(out, e.last)
	return out
}

// Health returns the worst objective state as of the last Eval.
func (e *SLOEngine) Health() SLOState {
	if e == nil {
		return SLOOK
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	worst := SLOOK
	for _, st := range e.last {
		worst = WorseSLO(worst, st.State)
	}
	return worst
}
