package obs

// Fidelity is one trained model's diagnostics record: the training
// trajectory (gradient norms, final loss, sequences skipped for
// non-finite loss) plus the post-training calibration of its predictive
// distribution on held-out data — PIT histogram, per-quantile coverage
// and held-out NLL. Producers (internal/iboxml) record one entry per
// training; BuildReport serializes them as the run report's "fidelity"
// section and ibox-stats -report pretty-prints them.
//
// Calibration semantics, for a Gaussian head P(y|x) = N(mu, sigma²):
//
//   - PIT: the probability integral transform u = Φ((y−mu)/sigma) of each
//     held-out observation, binned uniformly on [0,1]. A calibrated model
//     yields a flat histogram; an overconfident one piles mass at the
//     edges, an underconfident one in the middle. PITDeviation is the
//     maximum |bin fraction − 1/len(PIT)| — 0 is perfect.
//   - Coverage maps "p50"-style quantile names to the observed fraction
//     of held-out values at or below the predicted quantile; calibrated
//     means Coverage["p90"] ≈ 0.90.
//   - HeldOutNLL is the mean Gaussian negative log likelihood (nats per
//     observation, in the model's standardized units) on the held-out
//     set — the loss the training optimized, measured where it counts.
type Fidelity struct {
	// Label identifies the training within the run ("table1/with-ct").
	Label string `json:"label"`

	// Training-trajectory diagnostics.
	Epochs        int     `json:"epochs"`
	FinalLoss     float64 `json:"final_loss"`
	GradNormFirst float64 `json:"grad_norm_first"`
	GradNormLast  float64 `json:"grad_norm_last"`
	GradNormMax   float64 `json:"grad_norm_max"`
	// NonFiniteSeqs counts training sequences skipped because their loss
	// came back NaN/Inf; a nonzero value on a run that converged is an
	// early warning even when the NaN guard did not trip.
	NonFiniteSeqs int64 `json:"non_finite_seqs,omitempty"`

	// Held-out calibration of the predictive distribution.
	HeldOutWindows int                `json:"held_out_windows"`
	HeldOutNLL     float64            `json:"held_out_nll"`
	PIT            []float64          `json:"pit,omitempty"`
	PITDeviation   float64            `json:"pit_deviation"`
	Coverage       map[string]float64 `json:"coverage,omitempty"`
}

// RecordFidelity appends one model's fidelity record to the run report.
// No-op on a nil registry, so producers can record unconditionally.
func (r *Registry) RecordFidelity(f Fidelity) {
	if r == nil {
		return
	}
	r.fidMu.Lock()
	r.fidelity = append(r.fidelity, f)
	r.fidMu.Unlock()
}

// FidelityRecords returns a copy of all recorded fidelity entries, in
// record order. Nil on a nil registry.
func (r *Registry) FidelityRecords() []Fidelity {
	if r == nil {
		return nil
	}
	r.fidMu.Lock()
	defer r.fidMu.Unlock()
	return append([]Fidelity(nil), r.fidelity...)
}
