package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestHistogramQuantileEdges pins the interpolation behavior at the
// boundaries: a single-bucket histogram must report the bucket's lower
// bound at q=0 and its upper bound at q=1, out-of-range q clamps, and
// the unbounded tail bucket reports its lower edge.
func TestHistogramQuantileEdges(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(1500) // bucket [1024, 2048)
	}
	if got := h.Quantile(0); got != 1024 {
		t.Errorf("Quantile(0) = %g, want lower bound 1024", got)
	}
	if got := h.Quantile(1); got != 2048 {
		t.Errorf("Quantile(1) = %g, want upper bound 2048", got)
	}
	if got := h.Quantile(0.5); got != 1536 {
		t.Errorf("Quantile(0.5) = %g, want midpoint 1536", got)
	}
	// Out-of-range q clamps rather than extrapolating.
	if h.Quantile(-3) != h.Quantile(0) || h.Quantile(7) != h.Quantile(1) {
		t.Error("out-of-range q should clamp to [0, 1]")
	}

	// The last bucket is unbounded above; quantiles inside it report its
	// lower edge instead of inventing an upper bound.
	var tail Histogram
	tail.Observe(1 << 62)
	want := float64(histBound(histBuckets - 2))
	for _, q := range []float64{0, 0.5, 1} {
		if got := tail.Quantile(q); got != want {
			t.Errorf("tail Quantile(%g) = %g, want lower edge %g", q, got, want)
		}
	}
}

// TestConcurrentSpanLanes exercises the lane free-list under concurrent
// top-level spans: while N spans are simultaneously open they must hold N
// distinct lanes, and once all end, the lanes are reused rather than
// growing the lane count — so recorded spans sharing a lane never overlap
// in time.
func TestConcurrentSpanLanes(t *testing.T) {
	r := NewRegistry()
	const n = 8
	spans := make([]*Span, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			spans[i] = r.StartSpan(fmt.Sprintf("s%d", i))
		}(i)
	}
	close(start)
	wg.Wait()

	lanes := map[int]bool{}
	for _, sp := range spans {
		if lanes[sp.lane] {
			t.Fatalf("two concurrently open spans share lane %d", sp.lane)
		}
		lanes[sp.lane] = true
		if sp.lane < 0 || sp.lane >= n {
			t.Fatalf("lane %d outside [0, %d): free list grew past peak concurrency", sp.lane, n)
		}
	}
	for _, sp := range spans {
		sp.End()
	}

	// Lanes freed by End are reused: a fresh top-level span stays within
	// the peak-concurrency lane range.
	after := r.StartSpan("after")
	if after.lane >= n {
		t.Errorf("post-churn span claimed new lane %d, want reuse within [0, %d)", after.lane, n)
	}
	after.End()

	// Churn a second wave and then verify the global invariant the trace
	// viewer depends on: same-lane top-level spans never overlap.
	var wg2 sync.WaitGroup
	for i := 0; i < n; i++ {
		wg2.Add(1)
		go func(i int) {
			defer wg2.Done()
			for k := 0; k < 20; k++ {
				sp := r.StartSpan(fmt.Sprintf("churn%d-%d", i, k))
				sp.Start("child").End()
				sp.End()
			}
		}(i)
	}
	wg2.Wait()

	byLane := map[int][]spanRec{}
	for _, rec := range r.finishedSpans() {
		if rec.Depth == 0 {
			byLane[rec.Lane] = append(byLane[rec.Lane], rec)
		}
	}
	if len(byLane) > n+1 {
		t.Errorf("%d lanes in use, want ≤ %d (peak concurrency + 1)", len(byLane), n+1)
	}
	for lane, recs := range byLane {
		// finishedSpans sorts by start time; consecutive same-lane spans
		// must not overlap.
		for i := 1; i < len(recs); i++ {
			if recs[i].Start < recs[i-1].End {
				t.Fatalf("lane %d: span %q [%v,%v] overlaps %q [%v,%v]",
					lane, recs[i].Name, recs[i].Start, recs[i].End,
					recs[i-1].Name, recs[i-1].Start, recs[i-1].End)
			}
		}
	}
}

// TestSpanPath pins the "/"-joined path exposed to the log handler.
func TestSpanPath(t *testing.T) {
	r := NewRegistry()
	top := r.StartSpan("table1")
	child := top.Start("train")
	grand := child.Start("epoch")
	if got := grand.Path(); got != "table1/train/epoch" {
		t.Errorf("Path() = %q, want table1/train/epoch", got)
	}

	// currentSpan tracks the most recently started still-open span.
	if path, stage := r.currentSpan(); path != "table1/train/epoch" || stage != "epoch" {
		t.Errorf("currentSpan = %q,%q", path, stage)
	}
	grand.End()
	if path, stage := r.currentSpan(); path != "table1/train" || stage != "train" {
		t.Errorf("after child End, currentSpan = %q,%q", path, stage)
	}
	child.End()
	top.End()
	if path, stage := r.currentSpan(); path != "" || stage != "" {
		t.Errorf("with no open span, currentSpan = %q,%q, want empty", path, stage)
	}

	var nilSpan *Span
	if nilSpan.Path() != "" {
		t.Error("nil span Path should be empty")
	}
	var nilR *Registry
	if p, s := nilR.currentSpan(); p != "" || s != "" {
		t.Error("nil registry currentSpan should be empty")
	}
}
