package obs

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
)

// Structured run logs. The package exposes an optional slog.Logger whose
// records are tagged with the active span path and stage, so a JSON log
// line from deep inside iboxml.Train reads
//
//	{"msg":"epoch","span":"table1/train","stage":"train","epoch":3,...}
//
// without the training loop knowing anything about the span tree. The
// same disabled-means-free contract as the metrics applies: when no
// logger is installed, Logger() returns nil and every call site pays one
// atomic load + nil check and allocates nothing (asserted in the
// zero-alloc test). Installing a logger does not by itself enable the
// metrics registry; span/stage attributes appear only when one is also
// installed, because spans exist only then.

// logp holds the installed logger; nil means logging is disabled (the
// default).
var logp atomic.Pointer[slog.Logger]

// SetLogger installs l as the run logger; nil uninstalls.
func SetLogger(l *slog.Logger) {
	logp.Store(l)
}

// Logger returns the installed run logger, or nil when logging is
// disabled. Call sites guard: if l := obs.Logger(); l != nil { ... } —
// the disabled cost is one atomic load and the nil check.
func Logger() *slog.Logger { return logp.Load() }

// NewLogHandler returns a JSON slog handler writing to w at the given
// level, with the active span path and stage attached to every record
// (best effort: the most recently started still-open span; records from
// outside any span carry no span attributes).
func NewLogHandler(w io.Writer, level slog.Leveler) slog.Handler {
	return spanHandler{inner: slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})}
}

// spanHandler decorates an inner handler with span context read from the
// installed registry at Handle time.
type spanHandler struct {
	inner slog.Handler
}

func (h spanHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h spanHandler) Handle(ctx context.Context, rec slog.Record) error {
	if path, stage := Get().currentSpan(); stage != "" {
		rec.AddAttrs(slog.String("span", path), slog.String("stage", stage))
	}
	return h.inner.Handle(ctx, rec)
}

func (h spanHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return spanHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h spanHandler) WithGroup(name string) slog.Handler {
	return spanHandler{inner: h.inner.WithGroup(name)}
}

// ParseLogLevel maps a -log-level flag value to a slog.Level. Unknown
// values default to Info.
func ParseLogLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}
