package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4), hand-rolled so the
// serving tier can be scraped without adding a dependency. Mapping from
// the registry's model:
//
//   - counters export as `<name>_total` (type counter);
//   - gauges export under their name (type gauge);
//   - histograms export their native power-of-two buckets as cumulative
//     `<name>_bucket{le="..."}` series plus `<name>_sum` and
//     `<name>_count` (type histogram). Bucket bounds are the exclusive
//     upper edges of the internal layout (1024, 2048, …); the text
//     format's `le` is nominally inclusive, so an observation exactly on
//     a power-of-two boundary reads one bucket high — a sub-bucket
//     artifact already below the histogram's resolution.
//   - labeled families export each child with its label set; histogram
//     children put `le` after the family labels.
//
// Metric names are sanitized to the Prometheus grammar (every character
// outside [a-zA-Z0-9_:] becomes '_', so "serve.request_ns" reads
// serve_request_ns). Output is sorted by exposition name, then label
// set, so scrapes are diffable and the tests can assert on ordering.

// sanitizeMetricName maps a registry metric name to the Prometheus
// grammar.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// counterExpoName appends _total unless the name already carries it.
func counterExpoName(name string) string {
	n := sanitizeMetricName(name)
	if strings.HasSuffix(n, "_total") {
		return n
	}
	return n + "_total"
}

// expoFamily is one metric family ready to render: a TYPE line plus
// pre-formatted sample lines.
type expoFamily struct {
	name    string
	typ     string
	samples []string
}

// histSamples renders one histogram child (labels may be "") as
// cumulative buckets + sum + count.
func histSamples(name, labels string, h *Histogram) []string {
	var counts [histBuckets]int64
	h.BucketCounts(&counts)
	out := make([]string, 0, histBuckets+2)
	cum := int64(0)
	for b := 0; b < histBuckets; b++ {
		cum += counts[b]
		le := strconv.FormatInt(histBound(b), 10)
		if b == histBuckets-1 {
			le = "+Inf"
		}
		sep := ""
		if labels != "" {
			sep = ","
		}
		out = append(out, fmt.Sprintf("%s_bucket{%s%sle=%q} %d", name, labels, sep, le, cum))
	}
	lb := ""
	if labels != "" {
		lb = "{" + labels + "}"
	}
	out = append(out,
		fmt.Sprintf("%s_sum%s %d", name, lb, h.Sum()),
		fmt.Sprintf("%s_count%s %d", name, lb, h.Count()))
	return out
}

// WritePrometheus writes the registry's full metric state in the
// Prometheus text exposition format. Writes nothing on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	counterVecs := make(map[string]*CounterVec, len(r.counterVecs))
	for k, v := range r.counterVecs {
		counterVecs[k] = v
	}
	gaugeVecs := make(map[string]*GaugeVec, len(r.gaugeVecs))
	for k, v := range r.gaugeVecs {
		gaugeVecs[k] = v
	}
	histVecs := make(map[string]*HistogramVec, len(r.histVecs))
	for k, v := range r.histVecs {
		histVecs[k] = v
	}
	r.mu.Unlock()

	var fams []expoFamily
	for name, c := range counters {
		n := counterExpoName(name)
		fams = append(fams, expoFamily{name: n, typ: "counter",
			samples: []string{fmt.Sprintf("%s %d", n, c.Value())}})
	}
	for name, g := range gauges {
		n := sanitizeMetricName(name)
		fams = append(fams, expoFamily{name: n, typ: "gauge",
			samples: []string{fmt.Sprintf("%s %s", n, formatFloat(g.Value()))}})
	}
	for name, h := range hists {
		n := sanitizeMetricName(name)
		fams = append(fams, expoFamily{name: n, typ: "histogram",
			samples: histSamples(n, "", h)})
	}
	for name, cv := range counterVecs {
		children := cv.v.children()
		if len(children) == 0 {
			continue
		}
		n := counterExpoName(name)
		fam := expoFamily{name: n, typ: "counter"}
		for _, c := range children {
			fam.samples = append(fam.samples,
				fmt.Sprintf("%s{%s} %d", n, labelString(cv.v.keys, c.vals), c.h.Value()))
		}
		fams = append(fams, fam)
	}
	for name, gv := range gaugeVecs {
		children := gv.v.children()
		if len(children) == 0 {
			continue
		}
		n := sanitizeMetricName(name)
		fam := expoFamily{name: n, typ: "gauge"}
		for _, c := range children {
			fam.samples = append(fam.samples,
				fmt.Sprintf("%s{%s} %s", n, labelString(gv.v.keys, c.vals), formatFloat(c.h.Value())))
		}
		fams = append(fams, fam)
	}
	for name, hv := range histVecs {
		children := hv.v.children()
		if len(children) == 0 {
			continue
		}
		n := sanitizeMetricName(name)
		fam := expoFamily{name: n, typ: "histogram"}
		for _, c := range children {
			fam.samples = append(fam.samples,
				histSamples(n, labelString(hv.v.keys, c.vals), c.h)...)
		}
		fams = append(fams, fam)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			bw.WriteString(s)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// formatFloat renders a gauge value the way Prometheus expects
// (shortest round-trip representation; ±Inf and NaN spelled out).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PrometheusHandler serves the installed registry's metrics in the text
// exposition format, reading obs.Get() at request time so it follows
// whichever registry is active. With observability disabled the scrape
// succeeds and is empty.
func PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Get().WritePrometheus(w)
	})
}

// ValidateExposition parses a Prometheus text exposition and returns
// how many families and sample lines it holds, or an error naming the
// first malformed line. It checks the subset of the format this package
// emits — and that any compliant scraper depends on:
//
//   - every sample's family has a preceding # TYPE line with a known
//     type, and names match the metric grammar;
//   - label sets are well-formed (quoted, escaped) and sample values
//     parse as floats;
//   - histogram families carry le-labeled _bucket series with
//     non-decreasing cumulative counts per label set, ending at +Inf,
//     and _count equals the +Inf bucket.
//
// The CI smoke step and the endpoint tests run every live scrape
// through it.
func ValidateExposition(r io.Reader) (families, samples int, err error) {
	type histState struct {
		lastCum   map[string]float64 // labels-sans-le → last cumulative count
		infCount  map[string]float64
		countSeen map[string]float64
	}
	types := map[string]string{}
	histStates := map[string]*histState{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return 0, 0, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return 0, 0, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return 0, 0, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return 0, 0, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = typ
				families++
			}
			continue // HELP and other comments are free-form
		}
		name, labels, value, perr := parseSampleLine(line)
		if perr != nil {
			return 0, 0, fmt.Errorf("line %d: %v", lineNo, perr)
		}
		samples++
		fam, lbls := name, labels
		base, suffix := splitHistSuffix(name)
		if t, ok := types[base]; ok && t == "histogram" && suffix != "" {
			fam = base
			st := histStates[fam]
			if st == nil {
				st = &histState{lastCum: map[string]float64{}, infCount: map[string]float64{}, countSeen: map[string]float64{}}
				histStates[fam] = st
			}
			switch suffix {
			case "_bucket":
				le, rest, ok := extractLe(lbls)
				if !ok {
					return 0, 0, fmt.Errorf("line %d: histogram bucket without le label: %q", lineNo, line)
				}
				if prev, seen := st.lastCum[rest]; seen && value < prev {
					return 0, 0, fmt.Errorf("line %d: bucket counts decreased for %s{%s}", lineNo, fam, rest)
				}
				st.lastCum[rest] = value
				if le == "+Inf" {
					st.infCount[rest] = value
				}
			case "_count":
				st.countSeen[lbls] = value
			case "_sum":
				// sums are unconstrained
			}
			continue
		}
		if _, ok := types[fam]; !ok {
			return 0, 0, fmt.Errorf("line %d: sample %q has no preceding TYPE line", lineNo, fam)
		}
	}
	if serr := sc.Err(); serr != nil {
		return 0, 0, serr
	}
	for fam, st := range histStates {
		for lbls, cnt := range st.countSeen {
			if inf, ok := st.infCount[lbls]; !ok {
				return 0, 0, fmt.Errorf("histogram %s{%s} has no +Inf bucket", fam, lbls)
			} else if inf != cnt {
				return 0, 0, fmt.Errorf("histogram %s{%s}: _count %g != +Inf bucket %g", fam, lbls, cnt, inf)
			}
		}
	}
	return families, samples, nil
}

// ExpoSample is one parsed sample line of a Prometheus text exposition.
type ExpoSample struct {
	Name   string // metric name as exposed (e.g. "serve_http_requests_total")
	Labels string // raw label body without braces ("" when unlabeled)
	Value  float64
}

// ReadExposition parses a Prometheus text exposition into its sample
// lines (comments and TYPE/HELP lines are skipped), for consumers that
// want the values rather than the validation — the ibox-stats -watch
// dashboard reads live scrapes through it. Unlike ValidateExposition it
// does not enforce family typing or histogram invariants; it fails only
// on lines that do not parse as samples at all.
func ReadExposition(r io.Reader) ([]ExpoSample, error) {
	var out []ExpoSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		out = append(out, ExpoSample{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// splitHistSuffix separates a histogram series name into its family and
// the _bucket/_sum/_count suffix ("" when none).
func splitHistSuffix(name string) (base, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) {
			return strings.TrimSuffix(name, s), s
		}
	}
	return name, ""
}

// extractLe pulls the le="..." pair out of a label body, returning the
// remaining labels (used to group one histogram child's buckets).
func extractLe(labels string) (le, rest string, ok bool) {
	pairs := splitLabelPairs(labels)
	var kept []string
	for _, p := range pairs {
		if strings.HasPrefix(p, "le=") {
			le = strings.Trim(strings.TrimPrefix(p, "le="), `"`)
			ok = true
			continue
		}
		kept = append(kept, p)
	}
	return le, strings.Join(kept, ","), ok
}

// splitLabelPairs splits a label body on commas outside quotes.
func splitLabelPairs(labels string) []string {
	if labels == "" {
		return nil
	}
	var out []string
	start, inq, esc := 0, false, false
	for i := 0; i < len(labels); i++ {
		c := labels[i]
		switch {
		case esc:
			esc = false
		case c == '\\':
			esc = true
		case c == '"':
			inq = !inq
		case c == ',' && !inq:
			out = append(out, labels[start:i])
			start = i + 1
		}
	}
	return append(out, labels[start:])
}

// validMetricName checks the Prometheus metric-name grammar.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName checks the Prometheus label-name grammar.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseSampleLine parses `name[{labels}] value [timestamp]`.
func parseSampleLine(line string) (name, labels string, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexAny(rest, " \t")
	if brace >= 0 && (sp < 0 || brace < sp) {
		name = rest[:brace]
		close := findClosingBrace(rest, brace)
		if close < 0 {
			return "", "", 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels = rest[brace+1 : close]
		rest = strings.TrimSpace(rest[close+1:])
		if err := checkLabels(labels); err != nil {
			return "", "", 0, err
		}
	} else {
		if sp < 0 {
			return "", "", 0, fmt.Errorf("sample line %q has no value", line)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("malformed sample line %q", line)
	}
	v, perr := strconv.ParseFloat(fields[0], 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad sample value %q: %v", fields[0], perr)
	}
	return name, labels, v, nil
}

// findClosingBrace locates the '}' ending the label set opened at open,
// honoring quoted values.
func findClosingBrace(s string, open int) int {
	inq, esc := false, false
	for i := open + 1; i < len(s); i++ {
		c := s[i]
		switch {
		case esc:
			esc = false
		case c == '\\':
			esc = true
		case c == '"':
			inq = !inq
		case c == '}' && !inq:
			return i
		}
	}
	return -1
}

// checkLabels validates each k="v" pair of a label body.
func checkLabels(labels string) error {
	for _, p := range splitLabelPairs(labels) {
		eq := strings.IndexByte(p, '=')
		if eq < 0 {
			return fmt.Errorf("label pair %q has no '='", p)
		}
		k, v := p[:eq], p[eq+1:]
		if !validLabelName(k) {
			return fmt.Errorf("invalid label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label value %s is not quoted", v)
		}
	}
	return nil
}
