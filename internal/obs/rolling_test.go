package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestRollerRatesAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	c := r.Counter("shed")
	ro := NewRoller(time.Second, 60)
	ro.TrackHistogram("lat", h)
	ro.TrackCounter("shed", c)

	ro.Tick() // baseline snapshot
	for i := 0; i < 10; i++ {
		h.Observe(1000) // < 1024 → first bucket
	}
	c.Add(5)
	ro.Tick()
	if got := ro.Rate("lat", time.Second); got != 10 {
		t.Fatalf("hist rate = %v, want 10/s", got)
	}
	if got := ro.Rate("shed", time.Second); got != 5 {
		t.Fatalf("counter rate = %v, want 5/s", got)
	}
	if got := ro.WindowCount("lat", time.Second); got != 10 {
		t.Fatalf("window count = %d, want 10", got)
	}

	// Second tick interval: 20 much slower observations. The 1 s window
	// sees only the new ones; the 2 s window blends both.
	for i := 0; i < 20; i++ {
		h.Observe(1 << 20)
	}
	ro.Tick()
	if got := ro.Rate("lat", time.Second); got != 20 {
		t.Fatalf("1s rate after second tick = %v, want 20/s", got)
	}
	if got := ro.WindowCount("lat", 2*time.Second); got != 30 {
		t.Fatalf("2s window count = %d, want 30", got)
	}
	// Quantiles come from bucket deltas: the 1 s window holds only the
	// slow observations, so even p10 must sit in the slow bucket.
	if q := ro.Quantile("lat", time.Second, 0.10); q < 1000 {
		t.Fatalf("1s p10 = %v, want within the slow bucket", q)
	}
	if q := ro.Quantile("lat", 2*time.Second, 0.25); q > 2048 {
		t.Fatalf("2s p25 = %v, want within the fast bucket (10 of 30 obs are fast)", q)
	}
}

func TestRollerWindowClamping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	ro := NewRoller(time.Second, 5)
	if got := ro.Rate("x", time.Minute); got != 0 {
		t.Fatalf("rate before any tick = %v, want 0", got)
	}
	ro.TrackCounter("x", c)
	ro.Tick()
	if got := ro.Rate("x", time.Minute); got != 0 {
		t.Fatalf("rate after one tick = %v, want 0 (no delta yet)", got)
	}
	c.Add(3)
	ro.Tick()
	// A 60 s window with only 1 tick of history clamps to that history.
	if got := ro.Rate("x", time.Minute); got != 3 {
		t.Fatalf("clamped rate = %v, want 3/s", got)
	}
	// Fill past the ring: the window can never exceed slots-1 ticks.
	for i := 0; i < 10; i++ {
		c.Add(1)
		ro.Tick()
	}
	if got := ro.WindowCount("x", time.Minute); got != 5 {
		t.Fatalf("ring-bounded window count = %d, want 5 (history=5)", got)
	}
	if got := ro.Rate("unknown", time.Second); got != 0 {
		t.Fatalf("unknown name rate = %v, want 0", got)
	}
}

func TestRollerNilAndDisabled(t *testing.T) {
	var ro *Roller
	ro.Tick() // no-op, no panic
	if ro.Rate("x", time.Second) != 0 || ro.WindowCount("x", time.Second) != 0 || ro.Quantile("x", time.Second, 0.5) != 0 {
		t.Fatal("nil roller returned non-zero stats")
	}
	live := NewRoller(0, 0) // defaults: 1 s, 60 ticks
	if live.Interval() != time.Second {
		t.Fatalf("default interval = %v", live.Interval())
	}
	live.TrackHistogram("h", nil) // nil source (disabled registry) ignored
	live.TrackCounter("c", nil)
	live.Tick()
	if got := live.Rate("h", time.Second); got != 0 {
		t.Fatalf("nil-source rate = %v", got)
	}
}

func TestRollerStatsAndWindowLabel(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	ro := NewRoller(time.Second, 60)
	ro.TrackHistogram("lat", h)
	ro.Tick()
	h.Observe(4000)
	h.Observe(4000)
	ro.Tick()
	stats := ro.Stats("lat")
	if len(stats) != 3 {
		t.Fatalf("Stats rows = %d, want 3", len(stats))
	}
	if stats[0].Window != time.Second || stats[0].Count != 2 || stats[0].Rate != 2 {
		t.Fatalf("1s row = %+v", stats[0])
	}
	if stats[0].P99 <= 0 {
		t.Fatalf("1s p99 = %v, want > 0", stats[0].P99)
	}
	for i, want := range []string{"1s", "10s", "60s"} {
		if got := WindowLabel(stats[i].Window); got != want {
			t.Fatalf("WindowLabel(%v) = %q, want %q", stats[i].Window, got, want)
		}
	}
}

// TestRollerTickWraparound drives the tick counter far past the ring
// size: windows must keep reading the correct trailing deltas after the
// ring has wrapped many times over.
func TestRollerTickWraparound(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	h := r.Histogram("lat")
	ro := NewRoller(time.Second, 4) // 5 slots; wraps every 5 ticks
	ro.TrackCounter("x", c)
	ro.TrackHistogram("lat", h)
	for i := 0; i < 137; i++ { // 27× around the ring, plus a remainder
		c.Add(2)
		h.Observe(4000)
		ro.Tick()
	}
	if got := ro.WindowCount("x", time.Second); got != 2 {
		t.Fatalf("1s count after wraparound = %d, want 2", got)
	}
	if got := ro.WindowCount("x", time.Minute); got != 8 {
		t.Fatalf("ring-clamped count = %d, want 8 (history=4)", got)
	}
	if got := ro.Rate("lat", 2*time.Second); got != 1 {
		t.Fatalf("hist rate after wraparound = %v, want 1/s", got)
	}
	if q := ro.Quantile("lat", time.Second, 0.5); q <= 0 {
		t.Fatalf("quantile after wraparound = %v, want > 0", q)
	}
}

// TestRollerConcurrentTickAndRead races Tick against every read method;
// run under -race this is the memory-safety proof for the collector
// goroutine vs /statusz handlers.
func TestRollerConcurrentTickAndRead(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	h := r.Histogram("lat")
	ro := NewRoller(time.Second, 8)
	ro.TrackCounter("x", c)
	ro.TrackHistogram("lat", h)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Add(1)
			h.Observe(int64(i%100000 + 1))
			ro.Tick()
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = ro.Rate("x", 3*time.Second)
			_ = ro.WindowCount("lat", 5*time.Second)
			_ = ro.Quantile("lat", 3*time.Second, 0.99)
			_, _ = ro.CountOver("lat", 3*time.Second, 500)
			_ = ro.Stats("lat")
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestRollerZeroTrafficWindows pins the quiet-server contract: windows
// with no observations report 0 everywhere — never NaN, never negative.
func TestRollerZeroTrafficWindows(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	c := r.Counter("x")
	ro := NewRoller(time.Second, 10)
	ro.TrackHistogram("lat", h)
	ro.TrackCounter("x", c)
	for i := 0; i < 5; i++ {
		ro.Tick()
	}
	checks := map[string]float64{
		"rate":  ro.Rate("lat", 3*time.Second),
		"p50":   ro.Quantile("lat", 3*time.Second, 0.5),
		"p99":   ro.Quantile("lat", 3*time.Second, 0.99),
		"count": float64(ro.WindowCount("x", 3*time.Second)),
	}
	for name, v := range checks {
		if v != 0 || math.IsNaN(v) {
			t.Fatalf("zero-traffic %s = %v, want 0", name, v)
		}
	}
	over, total := ro.CountOver("lat", 3*time.Second, 100)
	if over != 0 || total != 0 {
		t.Fatalf("zero-traffic CountOver = %d/%d, want 0/0", over, total)
	}
	for _, st := range ro.Stats("lat") {
		if math.IsNaN(st.Rate) || math.IsNaN(st.P50) || math.IsNaN(st.P99) {
			t.Fatalf("NaN in zero-traffic stats row: %+v", st)
		}
	}
}

func TestRollerCountOver(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	ro := NewRoller(time.Second, 10)
	ro.TrackHistogram("lat", h)
	ro.Tick()
	for i := 0; i < 30; i++ {
		h.Observe(500) // bucket [0, 1024)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 << 20) // far above any small threshold
	}
	ro.Tick()

	// Threshold above the fast bucket, below the slow one: exactly the
	// slow observations count.
	over, total := ro.CountOver("lat", time.Second, 10_000)
	if total != 40 || over != 10 {
		t.Fatalf("CountOver(10k) = %d/%d, want 10/40", over, total)
	}
	// Threshold 0: everything is over.
	if over, _ := ro.CountOver("lat", time.Second, 0); over != 40 {
		t.Fatalf("CountOver(0) = %d, want 40", over)
	}
	// Threshold straddling the fast bucket interpolates linearly:
	// 512 is halfway through [0, 1024) → about half of 30, plus all 10 slow.
	over, _ = ro.CountOver("lat", time.Second, 512)
	if over < 20 || over > 30 {
		t.Fatalf("CountOver(512) = %d, want ≈25 (interpolated)", over)
	}
	// Unknown names and nil rollers are zeros.
	if o, tt := ro.CountOver("nope", time.Second, 1); o != 0 || tt != 0 {
		t.Fatalf("unknown name CountOver = %d/%d", o, tt)
	}
	var nilRo *Roller
	if o, tt := nilRo.CountOver("lat", time.Second, 1); o != 0 || tt != 0 {
		t.Fatalf("nil roller CountOver = %d/%d", o, tt)
	}
}
