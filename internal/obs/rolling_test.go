package obs

import (
	"testing"
	"time"
)

func TestRollerRatesAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	c := r.Counter("shed")
	ro := NewRoller(time.Second, 60)
	ro.TrackHistogram("lat", h)
	ro.TrackCounter("shed", c)

	ro.Tick() // baseline snapshot
	for i := 0; i < 10; i++ {
		h.Observe(1000) // < 1024 → first bucket
	}
	c.Add(5)
	ro.Tick()
	if got := ro.Rate("lat", time.Second); got != 10 {
		t.Fatalf("hist rate = %v, want 10/s", got)
	}
	if got := ro.Rate("shed", time.Second); got != 5 {
		t.Fatalf("counter rate = %v, want 5/s", got)
	}
	if got := ro.WindowCount("lat", time.Second); got != 10 {
		t.Fatalf("window count = %d, want 10", got)
	}

	// Second tick interval: 20 much slower observations. The 1 s window
	// sees only the new ones; the 2 s window blends both.
	for i := 0; i < 20; i++ {
		h.Observe(1 << 20)
	}
	ro.Tick()
	if got := ro.Rate("lat", time.Second); got != 20 {
		t.Fatalf("1s rate after second tick = %v, want 20/s", got)
	}
	if got := ro.WindowCount("lat", 2*time.Second); got != 30 {
		t.Fatalf("2s window count = %d, want 30", got)
	}
	// Quantiles come from bucket deltas: the 1 s window holds only the
	// slow observations, so even p10 must sit in the slow bucket.
	if q := ro.Quantile("lat", time.Second, 0.10); q < 1000 {
		t.Fatalf("1s p10 = %v, want within the slow bucket", q)
	}
	if q := ro.Quantile("lat", 2*time.Second, 0.25); q > 2048 {
		t.Fatalf("2s p25 = %v, want within the fast bucket (10 of 30 obs are fast)", q)
	}
}

func TestRollerWindowClamping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	ro := NewRoller(time.Second, 5)
	if got := ro.Rate("x", time.Minute); got != 0 {
		t.Fatalf("rate before any tick = %v, want 0", got)
	}
	ro.TrackCounter("x", c)
	ro.Tick()
	if got := ro.Rate("x", time.Minute); got != 0 {
		t.Fatalf("rate after one tick = %v, want 0 (no delta yet)", got)
	}
	c.Add(3)
	ro.Tick()
	// A 60 s window with only 1 tick of history clamps to that history.
	if got := ro.Rate("x", time.Minute); got != 3 {
		t.Fatalf("clamped rate = %v, want 3/s", got)
	}
	// Fill past the ring: the window can never exceed slots-1 ticks.
	for i := 0; i < 10; i++ {
		c.Add(1)
		ro.Tick()
	}
	if got := ro.WindowCount("x", time.Minute); got != 5 {
		t.Fatalf("ring-bounded window count = %d, want 5 (history=5)", got)
	}
	if got := ro.Rate("unknown", time.Second); got != 0 {
		t.Fatalf("unknown name rate = %v, want 0", got)
	}
}

func TestRollerNilAndDisabled(t *testing.T) {
	var ro *Roller
	ro.Tick() // no-op, no panic
	if ro.Rate("x", time.Second) != 0 || ro.WindowCount("x", time.Second) != 0 || ro.Quantile("x", time.Second, 0.5) != 0 {
		t.Fatal("nil roller returned non-zero stats")
	}
	live := NewRoller(0, 0) // defaults: 1 s, 60 ticks
	if live.Interval() != time.Second {
		t.Fatalf("default interval = %v", live.Interval())
	}
	live.TrackHistogram("h", nil) // nil source (disabled registry) ignored
	live.TrackCounter("c", nil)
	live.Tick()
	if got := live.Rate("h", time.Second); got != 0 {
		t.Fatalf("nil-source rate = %v", got)
	}
}

func TestRollerStatsAndWindowLabel(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	ro := NewRoller(time.Second, 60)
	ro.TrackHistogram("lat", h)
	ro.Tick()
	h.Observe(4000)
	h.Observe(4000)
	ro.Tick()
	stats := ro.Stats("lat")
	if len(stats) != 3 {
		t.Fatalf("Stats rows = %d, want 3", len(stats))
	}
	if stats[0].Window != time.Second || stats[0].Count != 2 || stats[0].Rate != 2 {
		t.Fatalf("1s row = %+v", stats[0])
	}
	if stats[0].P99 <= 0 {
		t.Fatalf("1s p99 = %v, want > 0", stats[0].P99)
	}
	for i, want := range []string{"1s", "10s", "60s"} {
		if got := WindowLabel(stats[i].Window); got != want {
			t.Fatalf("WindowLabel(%v) = %q, want %q", stats[i].Window, got, want)
		}
	}
}
