package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labeled metric families. A family ("vec") is one metric name plus a
// small, fixed set of label keys declared at creation; each distinct
// combination of label values materializes a child handle (a *Counter,
// *Gauge or *Histogram) shared by every caller that presents the same
// values. The design extends the package contract to labels:
//
//   - Disabled means free. On a nil registry every *Vec constructor
//     returns nil, With on a nil vec returns a nil child, and the nil
//     child's methods are no-ops — the same one-branch cost as flat
//     metrics.
//   - Enabled means cheap. With resolves values → child through an
//     immutable map published via atomic.Pointer (copy-on-write on
//     insert), so the hit path is one atomic load plus one map probe
//     with a stack-built key: no locks, zero allocations (asserted by
//     AllocsPerRun in the tests). Only the first observation of a new
//     label combination takes the family mutex.
//   - Cardinality is capped. A family holds at most its maxSeries
//     distinct children (DefaultMaxSeries unless overridden); beyond
//     the cap, With returns the family's overflow child, whose label
//     values all read OverflowLabel. A hostile stream of distinct
//     model IDs therefore costs one extra series and a counter, not
//     unbounded memory. Drops are counted in the shared
//     obs.series_dropped counter.
//
// Children appear in Snapshot (and therefore in the expvar export, the
// run report and the Prometheus exposition) under the flattened key
// `name{k1="v1",k2="v2"}` with keys in declared order.

// DefaultMaxSeries is the per-family child cap when the family is
// created without an explicit cap.
const DefaultMaxSeries = 256

// OverflowLabel is the label value every overflow child reports, taking
// the place of the values that would have exceeded the cap.
const OverflowLabel = "_other"

// labelSep separates label values inside a family's internal lookup
// key. 0xff cannot appear in UTF-8 text, so distinct value tuples can't
// collide.
const labelSep = "\xff"

// vecChild is one materialized (values → handle) child of a family.
type vecChild[H any] struct {
	vals []string
	h    *H
}

// vec is the shared machinery behind CounterVec/GaugeVec/HistogramVec.
type vec[H any] struct {
	name string
	keys []string
	max  int

	// cur is the immutable values→child map; replaced wholesale under
	// mu on insert, read lock-free on the hot path.
	cur atomic.Pointer[map[string]*vecChild[H]]
	mu  sync.Mutex

	// overflow is the shared beyond-the-cap child, created on first
	// overflow.
	overflow atomic.Pointer[vecChild[H]]

	// dropped counts observations routed to the overflow child
	// (obs.series_dropped); nil when the registry had no counter.
	dropped *Counter
}

// appendKey builds the family lookup key for vals into dst. The result
// aliases dst's backing array, so `m[string(key)]` compiles to an
// allocation-free map probe.
func appendKey(dst []byte, vals []string) []byte {
	for i, v := range vals {
		if i > 0 {
			dst = append(dst, labelSep...)
		}
		dst = append(dst, v...)
	}
	return dst
}

// with resolves a values tuple to its child handle, creating it under
// the family mutex on first use. Hot path: atomic load + map probe, no
// allocations. Returns the overflow child once max distinct tuples
// exist.
func (v *vec[H]) with(vals []string) *H {
	m := v.cur.Load()
	var buf [96]byte
	key := appendKey(buf[:0], vals)
	if c, ok := (*m)[string(key)]; ok {
		return c.h
	}
	return v.miss(vals)
}

// miss is the insert slow path.
func (v *vec[H]) miss(vals []string) *H {
	v.mu.Lock()
	defer v.mu.Unlock()
	key := string(appendKey(nil, vals))
	cur := *v.cur.Load()
	if c, ok := cur[key]; ok {
		return c.h
	}
	if len(cur) >= v.max {
		v.dropped.Add(1)
		if of := v.overflow.Load(); of != nil {
			return of.h
		}
		ofVals := make([]string, len(v.keys))
		for i := range ofVals {
			ofVals[i] = OverflowLabel
		}
		of := &vecChild[H]{vals: ofVals, h: new(H)}
		v.overflow.Store(of)
		return of.h
	}
	cp := make([]string, len(vals))
	copy(cp, vals)
	next := make(map[string]*vecChild[H], len(cur)+1)
	for k, c := range cur {
		next[k] = c
	}
	child := &vecChild[H]{vals: cp, h: new(H)}
	next[key] = child
	v.cur.Store(&next)
	return child.h
}

// children returns every materialized child (including the overflow
// child, if any) sorted by flattened key, for snapshots and exposition.
func (v *vec[H]) children() []*vecChild[H] {
	if v == nil {
		return nil
	}
	m := *v.cur.Load()
	out := make([]*vecChild[H], 0, len(m)+1)
	for _, c := range m {
		out = append(out, c)
	}
	if of := v.overflow.Load(); of != nil {
		out = append(out, of)
	}
	sort.Slice(out, func(i, j int) bool {
		return labelString(v.keys, out[i].vals) < labelString(v.keys, out[j].vals)
	})
	return out
}

// labelString renders a values tuple as `k1="v1",k2="v2"` (declared key
// order), the body of the flattened snapshot key and the Prometheus
// label set.
func labelString(keys, vals []string) string {
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format
// (backslash, double quote, newline).
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct{ v *vec[Counter] }

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct{ v *vec[Gauge] }

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct{ v *vec[Histogram] }

// CounterVec returns the named counter family, creating it with the
// given label keys and the default cardinality cap on first use. A
// family's keys are fixed by its first creation; later calls return the
// existing family regardless of the keys passed. Returns nil (a no-op
// family) on a nil registry.
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cv := r.counterVecs[name]
	if cv == nil {
		cv = &CounterVec{v: newVecLocked[Counter](r, name, keys, 0)}
		r.counterVecs[name] = cv
	}
	return cv
}

// GaugeVec returns the named gauge family; see CounterVec for the
// creation and nil semantics.
func (r *Registry) GaugeVec(name string, keys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	gv := r.gaugeVecs[name]
	if gv == nil {
		gv = &GaugeVec{v: newVecLocked[Gauge](r, name, keys, 0)}
		r.gaugeVecs[name] = gv
	}
	return gv
}

// HistogramVec returns the named histogram family; see CounterVec for
// the creation and nil semantics.
func (r *Registry) HistogramVec(name string, keys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	hv := r.histVecs[name]
	if hv == nil {
		hv = &HistogramVec{v: newVecLocked[Histogram](r, name, keys, 0)}
		r.histVecs[name] = hv
	}
	return hv
}

// newVecLocked builds a vec while the registry mutex is held: the
// dropped-series counter must be fetched without re-locking.
func newVecLocked[H any](r *Registry, name string, keys []string, max int) *vec[H] {
	if max <= 0 {
		max = DefaultMaxSeries
	}
	v := &vec[H]{name: name, keys: append([]string(nil), keys...), max: max}
	empty := map[string]*vecChild[H]{}
	v.cur.Store(&empty)
	c := r.counters["obs.series_dropped"]
	if c == nil {
		c = &Counter{}
		r.counters["obs.series_dropped"] = c
	}
	v.dropped = c
	return v
}

// SetMaxSeries overrides the family's cardinality cap. Lowering the cap
// below the current child count stops new children but drops none.
// No-op on a nil family.
func (cv *CounterVec) SetMaxSeries(n int) {
	if cv != nil && n > 0 {
		cv.v.mu.Lock()
		cv.v.max = n
		cv.v.mu.Unlock()
	}
}

// SetMaxSeries overrides the cap; see CounterVec.SetMaxSeries.
func (gv *GaugeVec) SetMaxSeries(n int) {
	if gv != nil && n > 0 {
		gv.v.mu.Lock()
		gv.v.max = n
		gv.v.mu.Unlock()
	}
}

// SetMaxSeries overrides the cap; see CounterVec.SetMaxSeries.
func (hv *HistogramVec) SetMaxSeries(n int) {
	if hv != nil && n > 0 {
		hv.v.mu.Lock()
		hv.v.max = n
		hv.v.mu.Unlock()
	}
}

// With resolves label values (declared key order) to the child counter,
// creating it on first use; the overflow child beyond the cap; nil (a
// no-op handle) on a nil family. The hit path is lock- and
// allocation-free.
func (cv *CounterVec) With(vals ...string) *Counter {
	if cv == nil {
		return nil
	}
	return cv.v.with(vals)
}

// With resolves to the child gauge; see CounterVec.With.
func (gv *GaugeVec) With(vals ...string) *Gauge {
	if gv == nil {
		return nil
	}
	return gv.v.with(vals)
}

// With resolves to the child histogram; see CounterVec.With.
func (hv *HistogramVec) With(vals ...string) *Histogram {
	if hv == nil {
		return nil
	}
	return hv.v.with(vals)
}
