package obs

import (
	"fmt"
	"sync"
	"time"
)

// Rolling-window statistics. Counters and histograms in this package
// are cumulative since process start — the right shape for a scrape-
// based collector, but useless for "what is the p99 *right now*". A
// Roller turns them into windowed views: on every Tick (nominally once
// per second) it snapshots each tracked source into a ring; rates and
// quantiles over the last N ticks are then computed from the delta
// between the newest snapshot and the one N ticks back. The ring is
// fixed-size, so a Roller's memory is bounded regardless of uptime.
//
// The Roller does not own a goroutine: callers drive Tick themselves
// (the serving tier runs a 1 s ticker; tests call Tick directly). All
// methods are safe for concurrent use; reads see the state as of the
// last Tick, never a half-taken snapshot.

// histSnap is one tick's cumulative histogram state.
type histSnap struct {
	buckets [histBuckets]int64
	count   int64
	sum     int64
}

// rolledHist is a tracked histogram plus its snapshot ring.
type rolledHist struct {
	name string
	src  *Histogram
	ring []histSnap
}

// rolledCounter is a tracked counter plus its snapshot ring.
type rolledCounter struct {
	name string
	src  *Counter
	ring []int64
}

// Roller computes rolling-window rates and quantiles over registered
// histograms and counters. Construct with NewRoller.
type Roller struct {
	interval time.Duration
	slots    int // ring capacity in snapshots (history+1)

	mu    sync.Mutex
	hists []*rolledHist
	ctrs  []*rolledCounter
	ticks int // total snapshots taken
}

// NewRoller returns a roller whose windows are measured in ticks of the
// given interval, retaining history ticks of deltas (60 retains enough
// for a 60 s window at a 1 s tick). interval <= 0 selects 1 s; history
// <= 0 selects 60.
func NewRoller(interval time.Duration, history int) *Roller {
	if interval <= 0 {
		interval = time.Second
	}
	if history <= 0 {
		history = 60
	}
	return &Roller{interval: interval, slots: history + 1}
}

// Interval returns the roller's nominal tick spacing.
func (ro *Roller) Interval() time.Duration { return ro.interval }

// TrackHistogram registers a histogram under name. No-op when the
// source handle is nil (disabled registry), so call sites need no
// guards.
func (ro *Roller) TrackHistogram(name string, h *Histogram) {
	if ro == nil || h == nil {
		return
	}
	ro.mu.Lock()
	ro.hists = append(ro.hists, &rolledHist{name: name, src: h, ring: make([]histSnap, ro.slots)})
	ro.mu.Unlock()
}

// TrackCounter registers a counter under name; nil sources are ignored.
func (ro *Roller) TrackCounter(name string, c *Counter) {
	if ro == nil || c == nil {
		return
	}
	ro.mu.Lock()
	ro.ctrs = append(ro.ctrs, &rolledCounter{name: name, src: c, ring: make([]int64, ro.slots)})
	ro.mu.Unlock()
}

// Tick snapshots every tracked source. Call at the roller's interval.
func (ro *Roller) Tick() {
	if ro == nil {
		return
	}
	ro.mu.Lock()
	slot := ro.ticks % ro.slots
	for _, rh := range ro.hists {
		s := &rh.ring[slot]
		rh.src.BucketCounts(&s.buckets)
		s.count = rh.src.Count()
		s.sum = rh.src.Sum()
	}
	for _, rc := range ro.ctrs {
		rc.ring[slot] = rc.src.Value()
	}
	ro.ticks++
	ro.mu.Unlock()
}

// windowTicks clamps a duration to whole ticks of available history.
// Caller holds ro.mu. Returns 0 when fewer than two snapshots exist.
func (ro *Roller) windowTicks(window time.Duration) int {
	if ro.ticks < 2 {
		return 0
	}
	w := int(window / ro.interval)
	if w < 1 {
		w = 1
	}
	if avail := ro.ticks - 1; w > avail {
		w = avail
	}
	if w > ro.slots-1 {
		w = ro.slots - 1
	}
	return w
}

// slotAt returns the ring slot of the snapshot taken k ticks before the
// newest one. Caller holds ro.mu.
func (ro *Roller) slotAt(k int) int {
	return ((ro.ticks-1-k)%ro.slots + ro.slots) % ro.slots
}

// Rate returns events per second over (up to) the trailing window: the
// increase of the named counter, or the observation count of the named
// histogram. 0 when the name is unknown or fewer than two ticks have
// happened.
func (ro *Roller) Rate(name string, window time.Duration) float64 {
	if ro == nil {
		return 0
	}
	ro.mu.Lock()
	defer ro.mu.Unlock()
	w := ro.windowTicks(window)
	if w == 0 {
		return 0
	}
	secs := float64(w) * ro.interval.Seconds()
	newSlot, oldSlot := ro.slotAt(0), ro.slotAt(w)
	for _, rc := range ro.ctrs {
		if rc.name == name {
			return float64(rc.ring[newSlot]-rc.ring[oldSlot]) / secs
		}
	}
	for _, rh := range ro.hists {
		if rh.name == name {
			return float64(rh.ring[newSlot].count-rh.ring[oldSlot].count) / secs
		}
	}
	return 0
}

// WindowCount returns how many observations (or counter increments)
// landed in the trailing window.
func (ro *Roller) WindowCount(name string, window time.Duration) int64 {
	if ro == nil {
		return 0
	}
	ro.mu.Lock()
	defer ro.mu.Unlock()
	w := ro.windowTicks(window)
	if w == 0 {
		return 0
	}
	newSlot, oldSlot := ro.slotAt(0), ro.slotAt(w)
	for _, rc := range ro.ctrs {
		if rc.name == name {
			return rc.ring[newSlot] - rc.ring[oldSlot]
		}
	}
	for _, rh := range ro.hists {
		if rh.name == name {
			return rh.ring[newSlot].count - rh.ring[oldSlot].count
		}
	}
	return 0
}

// Quantile returns the interpolated q-quantile of the named histogram's
// observations within the trailing window, in the histogram's native
// unit. 0 when the name is unknown, not a histogram, or the window is
// empty.
func (ro *Roller) Quantile(name string, window time.Duration, q float64) float64 {
	if ro == nil {
		return 0
	}
	ro.mu.Lock()
	defer ro.mu.Unlock()
	w := ro.windowTicks(window)
	if w == 0 {
		return 0
	}
	newSlot, oldSlot := ro.slotAt(0), ro.slotAt(w)
	for _, rh := range ro.hists {
		if rh.name != name {
			continue
		}
		var delta [histBuckets]int64
		for b := range delta {
			delta[b] = rh.ring[newSlot].buckets[b] - rh.ring[oldSlot].buckets[b]
		}
		return quantileFromCounts(&delta, q)
	}
	return 0
}

// CountOver returns how many of the named histogram's observations in
// the trailing window exceeded threshold (native unit), alongside the
// window's total. Within the bucket straddling the threshold the split
// is linearly interpolated, consistent with Quantile; the unbounded last
// bucket interpolates as if it ended at twice its lower bound. (0, 0)
// when the name is unknown or the window is empty.
func (ro *Roller) CountOver(name string, window time.Duration, threshold int64) (over, total int64) {
	if ro == nil {
		return 0, 0
	}
	ro.mu.Lock()
	defer ro.mu.Unlock()
	w := ro.windowTicks(window)
	if w == 0 {
		return 0, 0
	}
	newSlot, oldSlot := ro.slotAt(0), ro.slotAt(w)
	for _, rh := range ro.hists {
		if rh.name != name {
			continue
		}
		for b := 0; b < histBuckets; b++ {
			c := rh.ring[newSlot].buckets[b] - rh.ring[oldSlot].buckets[b]
			if c <= 0 {
				continue
			}
			total += c
			lo := int64(0)
			if b > 0 {
				lo = histBound(b - 1)
			}
			hi := histBound(b)
			if b == histBuckets-1 {
				hi = 2 * lo
			}
			switch {
			case threshold <= lo:
				over += c
			case threshold >= hi:
			default:
				frac := float64(hi-threshold) / float64(hi-lo)
				over += int64(float64(c)*frac + 0.5)
			}
		}
		return over, total
	}
	return 0, 0
}

// WindowStat is one (window, rate, p50, p99) row of a rolling summary.
type WindowStat struct {
	Window time.Duration
	Rate   float64 // events/s
	Count  int64
	P50    float64 // native unit (ns for latency histograms)
	P99    float64
}

// Stats summarizes the named histogram over the standard 1 s / 10 s /
// 60 s windows — the row set /statusz renders and the load signal a
// router tier reads per worker.
func (ro *Roller) Stats(name string) []WindowStat {
	out := make([]WindowStat, 0, 3)
	for _, w := range []time.Duration{time.Second, 10 * time.Second, 60 * time.Second} {
		out = append(out, WindowStat{
			Window: w,
			Rate:   ro.Rate(name, w),
			Count:  ro.WindowCount(name, w),
			P50:    ro.Quantile(name, w, 0.50),
			P99:    ro.Quantile(name, w, 0.99),
		})
	}
	return out
}

// WindowLabel renders a window duration the way /statusz and the
// rolling gauges name it ("1s", "10s", "60s").
func WindowLabel(w time.Duration) string {
	return fmt.Sprintf("%ds", int(w.Seconds()))
}
