package session

import (
	"context"
	"io"
	"sync"
)

// ring is the session's bounded replay buffer of encoded events. The
// run goroutine publishes; any number of subscribers read by cursor.
// A subscriber that falls more than RingSize events behind loses the
// overwritten prefix and is told about the gap (SSE clients see it as
// a jump in event ids and can re-request state).
type ring struct {
	mu     sync.Mutex
	buf    []entry // circular
	start  int     // index of the oldest entry
	n      int
	notify chan struct{} // closed and replaced on every publish
	closed bool
}

type entry struct {
	seq  int64
	data []byte
}

func newRing(capacity int) *ring {
	return &ring{
		buf:    make([]entry, capacity),
		notify: make(chan struct{}),
	}
}

// add publishes one encoded event and wakes all waiters.
func (r *ring) add(seq int64, data []byte) {
	r.mu.Lock()
	if r.n == len(r.buf) {
		r.buf[r.start] = entry{seq: seq, data: data}
		r.start = (r.start + 1) % len(r.buf)
	} else {
		r.buf[(r.start+r.n)%len(r.buf)] = entry{seq: seq, data: data}
		r.n++
	}
	ch := r.notify
	r.notify = make(chan struct{})
	r.mu.Unlock()
	close(ch)
}

// closeRing marks the stream complete and wakes all waiters for good.
func (r *ring) closeRing() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.notify)
	}
	r.mu.Unlock()
}

// since returns every buffered event with seq > after, the cursor to
// resume from, whether events were lost to overwrite (gap), whether the
// stream is complete, and a channel that closes on the next publish.
func (r *ring) since(after int64) (batch [][]byte, next int64, gap, closed bool, wait <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	next = after
	for i := 0; i < r.n; i++ {
		e := r.buf[(r.start+i)%len(r.buf)]
		if e.seq <= after {
			continue
		}
		if len(batch) == 0 && e.seq != after+1 {
			gap = true
		}
		batch = append(batch, e.data)
		next = e.seq
	}
	return batch, next, gap, r.closed, r.notify
}

// Subscription is one subscriber's cursor into a session's event
// stream. Close it when done so the idle-TTL reaper sees the session
// unwatched.
type Subscription struct {
	s      *Session
	cursor int64
	once   sync.Once
}

// Subscribe attaches a subscriber resuming after the given event seq
// (0 = from the oldest buffered event).
func (s *Session) Subscribe(after int64) *Subscription {
	s.subs.Add(1)
	s.touch()
	return &Subscription{s: s, cursor: after}
}

// Next blocks until events are available and returns them in order
// (encoded JSON, one per element), with gap reporting whether events
// were lost to ring overwrite since the last call. It returns io.EOF
// once the session is terminal and the stream fully drained, or ctx's
// error.
func (sub *Subscription) Next(ctx context.Context) (batch [][]byte, gap bool, err error) {
	for {
		batch, next, gap, closed, wait := sub.s.ring.since(sub.cursor)
		if len(batch) > 0 {
			sub.cursor = next
			return batch, gap, nil
		}
		if closed {
			return nil, false, io.EOF
		}
		select {
		case <-wait:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// Cursor returns the seq of the last event returned by Next.
func (sub *Subscription) Cursor() int64 { return sub.cursor }

// Close detaches the subscriber. Idempotent.
func (sub *Subscription) Close() {
	sub.once.Do(func() {
		sub.s.subs.Add(-1)
		sub.s.touch()
	})
}
