package session

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"os"
	"sync"
	"testing"
	"time"

	"ibox/internal/iboxml"
	"ibox/internal/iboxnet"
	"ibox/internal/par"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// testNetParams is a synthetic learnt path: 10 Mbit/s, 20 ms, a queue
// worth ~24 packets, and a ramping cross-traffic series.
func testNetParams() iboxnet.Params {
	ct := trace.NewSeries(0, 100*sim.Millisecond, 50)
	for i := range ct.Vals {
		ct.Vals[i] = float64(300 * i)
	}
	return iboxnet.Params{
		Bandwidth:    1.25e6,
		PropDelay:    20 * sim.Millisecond,
		BufferBytes:  36000,
		CrossTraffic: ct,
		LossRate:     0.01,
	}
}

// trainMLOnce caches one tiny trained checkpoint across tests (the
// same construction the serve tests use).
var trainMLOnce = struct {
	sync.Once
	m   *iboxml.Model
	err error
}{}

func trainedML(t testing.TB) *iboxml.Model {
	t.Helper()
	trainMLOnce.Do(func() {
		rng := sim.NewRand(3, 5)
		var samples []iboxml.TrainingSample
		for i := int64(0); i < 2; i++ {
			tr := &trace.Trace{Protocol: "synth"}
			var now sim.Time
			for seq := int64(0); now < 4*sim.Second; seq++ {
				phase := 2 * math.Pi * now.Seconds() / 4
				rate := 156_250 * (1.25 + math.Sin(phase+float64(i)))
				now += sim.Time(1500 / rate * float64(sim.Second))
				delayMs := 20 + 40*math.Abs(math.Sin(phase)) + rng.NormFloat64()
				if delayMs < 1 {
					delayMs = 1
				}
				tr.Packets = append(tr.Packets, trace.Packet{
					Seq: seq, Size: 1500, SendTime: now,
					RecvTime: now + sim.Time(delayMs*float64(sim.Millisecond)),
				})
			}
			samples = append(samples, iboxml.TrainingSample{Trace: tr})
		}
		trainMLOnce.m, trainMLOnce.err = iboxml.Train(samples, iboxml.Config{
			Hidden: 8, Layers: 1, Epochs: 2, Seed: 5,
		})
	})
	if trainMLOnce.err != nil {
		t.Fatalf("train: %v", trainMLOnce.err)
	}
	return trainMLOnce.m
}

// collect drains a session's full event stream from the beginning.
func collect(t testing.TB, s *Session) [][]byte {
	t.Helper()
	sub := s.Subscribe(0)
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var all [][]byte
	for {
		batch, gap, err := sub.Next(ctx)
		if errors.Is(err, io.EOF) {
			return all
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if gap {
			t.Fatalf("unexpected gap in stream after %d events", len(all))
		}
		all = append(all, batch...)
	}
}

// runToEnd creates an unpaced session and returns its full stream.
func runToEnd(t testing.TB, cfg Config) [][]byte {
	t.Helper()
	cfg.Speed = -1 // unpaced
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	stream := collect(t, s)
	<-s.Done()
	return stream
}

func joinStream(events [][]byte) []byte {
	return bytes.Join(events, []byte("\n"))
}

// TestSessionDeterministic proves the tentpole determinism contract:
// the same (checkpoint, sender, seed) produces a byte-identical
// telemetry stream across runs and across serial vs pooled stepping,
// for both artifact kinds.
func TestSessionDeterministic(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()

	cases := []struct {
		name string
		cfg  Config
	}{
		{"iboxnet", Config{
			ID: "d1", Kind: KindIBoxNet, Net: testNetParams(),
			Protocol: "cubic", Seed: 42, Duration: 3 * sim.Second,
			RingSize: 1 << 16,
		}},
		{"iboxml", Config{
			ID: "d2", Kind: KindIBoxML, ML: trainedML(t),
			Protocol: "vegas", Seed: 7, Duration: 2 * sim.Second,
			RingSize: 1 << 16,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := runToEnd(t, tc.cfg)
			again := runToEnd(t, tc.cfg)
			pooled := tc.cfg
			pooled.Pool = pool
			onPool := runToEnd(t, pooled)

			if len(serial) < 100 {
				t.Fatalf("expected a substantial stream, got %d events", len(serial))
			}
			if !bytes.Equal(joinStream(serial), joinStream(again)) {
				t.Fatalf("two serial runs differ (%d vs %d events)", len(serial), len(again))
			}
			if !bytes.Equal(joinStream(serial), joinStream(onPool)) {
				t.Fatalf("serial vs pooled streams differ (%d vs %d events)", len(serial), len(onPool))
			}
		})
	}
}

// TestSessionLifecycleAndMutation drives one session through the full
// state machine: run, mutate (bandwidth halved + loss burst), observe
// the sender's cwnd respond, pause, resume, close.
func TestSessionLifecycleAndMutation(t *testing.T) {
	// Paced at 100× so the session visibly runs but cannot complete its
	// 10-minute virtual duration inside the test.
	s, err := New(Config{
		ID: "life", Kind: KindIBoxNet, Net: testNetParams(),
		Protocol: "cubic", Seed: 1, Duration: 600 * sim.Second,
		Speed: 100, RingSize: 1 << 16,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		s.Close("test")
		<-s.Done()
	}()

	sub := s.Subscribe(0)
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Let it run, then mutate: halve the bandwidth and inject a loss
	// burst — the sender's window must come down.
	waitSummaries := func(n int) (cwndSum float64, count int) {
		for count < n {
			batch, _, err := sub.Next(ctx)
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			for _, b := range batch {
				var ev Event
				if err := json.Unmarshal(b, &ev); err != nil {
					t.Fatalf("bad event %s: %v", b, err)
				}
				if ev.Type == EventSummary {
					cwndSum += float64(ev.Summary.Cwnd)
					count++
				}
			}
		}
		return cwndSum, count
	}
	beforeSum, beforeN := waitSummaries(20)

	loss := 0.2
	if err := s.Mutate(Mutation{
		BandwidthScale: 0.5,
		LossRate:       &loss,
		LossBurstS:     5,
	}); err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	if got := s.Info().Mutations; got != 1 {
		t.Fatalf("Mutations = %d, want 1", got)
	}
	afterSum, afterN := waitSummaries(20)
	before, after := beforeSum/float64(beforeN), afterSum/float64(afterN)
	if after >= before {
		t.Errorf("mean cwnd did not drop after bandwidth×0.5 + loss burst: before %.1f, after %.1f", before, after)
	}

	// Pause freezes virtual time.
	if err := s.Pause(); err != nil {
		t.Fatalf("Pause: %v", err)
	}
	if st := s.State(); st != Paused {
		t.Fatalf("state = %v, want paused", st)
	}
	vt1 := s.Info().VTSeconds
	time.Sleep(50 * time.Millisecond)
	if vt2 := s.Info().VTSeconds; vt2 != vt1 {
		t.Fatalf("virtual time advanced while paused: %v -> %v", vt1, vt2)
	}
	if err := s.Resume(); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	waitSummaries(2) // proves it advances again

	if err := s.Close("client"); err != nil {
		t.Fatalf("Close: %v", err)
	}
	<-s.Done()
	if st := s.State(); st != Closed {
		t.Fatalf("state = %v, want closed", st)
	}
	// Double close is a no-op.
	if err := s.Close("again"); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The stream drains to EOF.
	for {
		_, _, err := sub.Next(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next after close: %v", err)
		}
	}
}

// TestSessionCheckpointSwap swaps the artifact mid-session and keeps
// streaming.
func TestSessionCheckpointSwap(t *testing.T) {
	s, err := New(Config{
		ID: "swap", Kind: KindIBoxNet, Net: testNetParams(),
		Checkpoint: "a.json", Protocol: "reno", Seed: 3,
		Duration: 600 * sim.Second, Speed: 100, RingSize: 1 << 16,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		s.Close("test")
		<-s.Done()
	}()

	// Subscribe before mutating so the mutate event cannot be lost to
	// ring overwrite.
	sub := s.Subscribe(0)
	defer sub.Close()

	swapped := testNetParams()
	swapped.PropDelay = 60 * sim.Millisecond
	if err := s.Mutate(Mutation{Swap: &ModelSwap{
		Checkpoint: "b.json", Kind: KindIBoxNet, Net: swapped,
	}}); err != nil {
		t.Fatalf("swap: %v", err)
	}
	if got := s.Info().Checkpoint; got != "b.json" {
		t.Fatalf("Info.Checkpoint = %q, want b.json", got)
	}

	// Delay floor on fresh packets reflects the new path's RTT.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sawMutate := false
	sawVT := 0.0
	var ev Event
	for {
		batch, _, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		for _, b := range batch {
			if err := json.Unmarshal(b, &ev); err != nil {
				t.Fatal(err)
			}
			if ev.Type == EventMutate {
				if ev.Mutation.Checkpoint != "b.json" {
					t.Fatalf("mutate event checkpoint = %q", ev.Mutation.Checkpoint)
				}
				sawMutate, sawVT = true, ev.VT
			}
			// A packet sent well after the swap (past the old path's
			// in-flight tail) must see the new propagation delay.
			if sawMutate && ev.Type == EventPacket && ev.VT > sawVT+1 {
				if ev.Packet.DelayMs < 59 {
					t.Fatalf("post-swap delay %.1f ms < new prop delay", ev.Packet.DelayMs)
				}
				return
			}
		}
	}
}

// TestSessionInfoDuringSwapRace hammers Info (the GET /sessions and
// /statusz read path) from several goroutines while the run goroutine
// applies checkpoint swaps, under the race detector. Info must always
// see a consistent (kind, checkpoint) pair: both are rewritten under
// infoMu by applyMutation.
func TestSessionInfoDuringSwapRace(t *testing.T) {
	ml := trainedML(t)
	s, err := New(Config{
		ID: "inforace", Kind: KindIBoxNet, Net: testNetParams(),
		Checkpoint: "net.json", Protocol: "cubic", Seed: 6,
		Duration: 600 * sim.Second, Speed: 100, RingSize: 1 << 16,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		s.Close("test")
		<-s.Done()
	}()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				in := s.Info()
				wantCkpt := "net.json"
				if in.Kind == KindIBoxML {
					wantCkpt = "ml.json"
				}
				if in.Checkpoint != wantCkpt {
					t.Errorf("Info saw torn swap: kind %q with checkpoint %q", in.Kind, in.Checkpoint)
					return
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		var mu Mutation
		if i%2 == 0 {
			mu = Mutation{Swap: &ModelSwap{Checkpoint: "ml.json", Kind: KindIBoxML, ML: ml}}
		} else {
			mu = Mutation{Swap: &ModelSwap{Checkpoint: "net.json", Kind: KindIBoxNet, Net: testNetParams()}}
		}
		if err := s.Mutate(mu); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	close(done)
	wg.Wait()
}

// TestMutationValidation rejects nonsense.
func TestMutationValidation(t *testing.T) {
	bad := -0.5
	for _, mu := range []Mutation{
		{},
		{BandwidthScale: -1},
		{LossRate: &bad},
	} {
		if err := (&mu).validate(); err == nil {
			t.Errorf("mutation %+v validated", mu)
		}
	}
}

// TestManagerCapsAndReaper exercises admission caps, idle-TTL reaping,
// and drain.
func TestManagerCapsAndReaper(t *testing.T) {
	m := NewManager(Limits{MaxSessions: 3, MaxPerTenant: 2, TTL: -1}, nil)
	defer m.Shutdown()

	mk := func(tenant string) (*Session, error) {
		return m.Create(Config{
			Kind: KindIBoxNet, Net: testNetParams(), Tenant: tenant,
			Protocol: "cubic", Seed: 1, Duration: 300 * sim.Second,
			// Slow pacing: the session barely advances during the test.
			Speed: 0.01,
		})
	}
	a1, err := mk("a")
	if err != nil {
		t.Fatalf("create a1: %v", err)
	}
	if _, err := mk("a"); err != nil {
		t.Fatalf("create a2: %v", err)
	}
	if _, err := mk("a"); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("third tenant-a session: err = %v, want tenant limit", err)
	}
	if _, err := mk("b"); err != nil {
		t.Fatalf("create b1: %v", err)
	}
	if _, err := mk("c"); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("fourth session: err = %v, want session limit", err)
	}
	if got := m.Active(); got != 3 {
		t.Fatalf("Active = %d, want 3", got)
	}
	if got := len(m.List()); got != 3 {
		t.Fatalf("List = %d sessions, want 3", got)
	}

	// Closing frees the slot for the capped tenant.
	if err := a1.Close("test"); err != nil {
		t.Fatalf("close a1: %v", err)
	}
	<-a1.Done()
	if _, err := m.Get(a1.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("closed session still listed: %v", err)
	}
	if _, err := mk("a"); err != nil {
		t.Fatalf("create after close: %v", err)
	}

	// The reaper expires idle (unwatched) sessions, and only those.
	m2 := NewManager(Limits{MaxSessions: 8, TTL: time.Minute}, nil)
	defer m2.Shutdown()
	idle, err := m2.Create(Config{
		Kind: KindIBoxNet, Net: testNetParams(),
		Protocol: "cubic", Seed: 2, Duration: 300 * sim.Second, Speed: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	watched, err := m2.Create(Config{
		Kind: KindIBoxNet, Net: testNetParams(),
		Protocol: "cubic", Seed: 3, Duration: 300 * sim.Second, Speed: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := watched.Subscribe(0)
	defer sub.Close()

	m2.reapOnceNow(time.Now().Add(2 * time.Minute))
	<-idle.Done()
	if st := idle.State(); st != Expired {
		t.Fatalf("idle session state = %v, want expired", st)
	}
	if watched.State().terminal() {
		t.Fatal("watched session was reaped")
	}
	if got := m2.Active(); got != 1 {
		t.Fatalf("Active after reap = %d, want 1", got)
	}
}

// TestManagerCreateDuplicateIDRace: concurrent Creates with the same
// explicit id must admit exactly one session — the id is reserved in
// the same critical section as the dup check, so the losers cannot
// overwrite the winner in the session map and corrupt slot accounting.
func TestManagerCreateDuplicateIDRace(t *testing.T) {
	m := NewManager(Limits{MaxSessions: 16, TTL: -1}, nil)
	defer m.Shutdown()

	cfg := Config{
		ID: "dup", Kind: KindIBoxNet, Net: testNetParams(),
		Protocol: "cubic", Seed: 1, Duration: 300 * sim.Second, Speed: 0.01,
	}
	const n = 8
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = m.Create(cfg)
		}(i)
	}
	wg.Wait()
	created := 0
	for _, err := range errs {
		if err == nil {
			created++
		}
	}
	if created != 1 {
		t.Fatalf("%d of %d same-id Creates succeeded, want exactly 1", created, n)
	}
	if got := m.Active(); got != 1 {
		t.Fatalf("Active = %d, want 1", got)
	}

	// The losers' failures released their reservations: closing the
	// winner frees the id and its slot for reuse.
	s, err := m.Get("dup")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close("test"); err != nil {
		t.Fatal(err)
	}
	<-s.Done()
	s2, err := m.Create(cfg)
	if err != nil {
		t.Fatalf("recreate after close: %v", err)
	}
	if err := s2.Close("test"); err != nil {
		t.Fatal(err)
	}
	<-s2.Done()
}

// TestExpireRecheckSparesActiveSession: the reaper decides a session is
// idle under the manager lock but expires it afterwards; a subscriber
// (or any control-plane touch) landing in that window must abort the
// expiry rather than have its just-opened stream cut.
func TestExpireRecheckSparesActiveSession(t *testing.T) {
	s, err := New(Config{
		ID: "recheck", Kind: KindIBoxNet, Net: testNetParams(),
		Protocol: "cubic", Seed: 8, Duration: 300 * sim.Second, Speed: 0.01,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		s.Close("test")
		<-s.Done()
	}()
	ttl := time.Minute

	// A subscriber attached after the scan: the re-check sees it.
	sub := s.Subscribe(0)
	s.expire(time.Now().Add(2*time.Minute), ttl)
	if s.State().terminal() {
		t.Fatal("expire reaped a watched session")
	}

	// Unwatched but touched after the scan: still spared.
	sub.Close()
	s.touch()
	s.expire(time.Now(), ttl)
	if s.State().terminal() {
		t.Fatal("expire reaped a freshly touched session")
	}

	// Genuinely idle: expires.
	s.expire(time.Now().Add(2*time.Minute), ttl)
	<-s.Done()
	if st := s.State(); st != Expired {
		t.Fatalf("state = %v, want expired", st)
	}
}

// TestManagerCheckpointAndDrain writes the drain descriptor and shuts
// every session down.
func TestManagerCheckpointAndDrain(t *testing.T) {
	m := NewManager(Limits{MaxSessions: 4, TTL: -1}, nil)
	s, err := m.Create(Config{
		Kind: KindIBoxNet, Net: testNetParams(), Checkpoint: "prof.json",
		Protocol: "bbr", Seed: 9, Duration: 300 * sim.Second, Speed: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/sessions.json"
	if err := m.Checkpoint(path); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	m.Shutdown()
	<-s.Done()
	if st := s.State(); st != Closed {
		t.Fatalf("state after drain = %v, want closed", st)
	}

	var snap struct {
		Sessions []SessionState `json:"sessions"`
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("decode checkpoint: %v", err)
	}
	if len(snap.Sessions) != 1 || snap.Sessions[0].Checkpoint != "prof.json" {
		t.Fatalf("checkpoint content: %+v", snap)
	}

	// A drained manager refuses new sessions.
	if _, err := m.Create(Config{
		Kind: KindIBoxNet, Net: testNetParams(), Protocol: "cubic",
		Seed: 1, Duration: sim.Second,
	}); !errors.Is(err, ErrDraining) {
		t.Fatalf("create after drain: err = %v, want draining", err)
	}
}

// TestRingGapReporting: a subscriber further behind than the ring
// retains learns about the loss.
func TestRingGapReporting(t *testing.T) {
	r := newRing(4)
	for seq := int64(1); seq <= 10; seq++ {
		r.add(seq, []byte{byte(seq)})
	}
	batch, next, gap, _, _ := r.since(0)
	if !gap {
		t.Fatal("expected gap after overwrite")
	}
	if len(batch) != 4 || next != 10 {
		t.Fatalf("since(0) = %d events, next %d", len(batch), next)
	}
	// A current subscriber sees no gap.
	if _, _, gap, _, _ := r.since(10); gap {
		t.Fatal("caught-up subscriber reported a gap")
	}
}
