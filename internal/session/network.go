package session

import (
	"fmt"
	"math"
	"math/rand"

	"ibox/internal/cc"
	"ibox/internal/iboxml"
	"ibox/internal/iboxnet"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// The session's data path: a learned artifact instantiated as a
// cc.Network on the session's private scheduler, wrapped in a shim that
// applies live mutations (loss/reorder bursts) and lets the inner path
// be swapped out mid-session (bandwidth rescale, checkpoint swap)
// without disturbing the flow — exactly how `tc qdisc change` alters a
// live interface under an established connection. Packets already in
// flight on the old path still deliver: their events stay scheduled on
// the shared scheduler.

// ModelSwap is a resolved replacement artifact for a mid-session
// checkpoint swap. The serving layer resolves the registry id into one
// of these before handing it to Session.Mutate.
type ModelSwap struct {
	Checkpoint string
	Kind       string // "iboxnet" | "iboxml"
	Net        iboxnet.Params
	Variant    iboxnet.Variant
	ML         *iboxml.Model
}

// Mutation is one live path change, applied atomically at a tick
// boundary. Zero/nil fields leave that aspect untouched. Rate pointers
// distinguish "set to zero" (end the impairment) from "unspecified".
type Mutation struct {
	// BandwidthScale multiplies the path's current bottleneck rate
	// (iboxnet: the path is rebuilt at the scaled rate; iboxml: predicted
	// delays scale by the reciprocal). 1 or 0 = unchanged.
	BandwidthScale float64 `json:"bandwidth_scale,omitempty"`
	// LossRate injects i.i.d. packet loss at this probability for
	// LossBurstS seconds of virtual time (0 = until changed again).
	LossRate   *float64 `json:"loss_rate,omitempty"`
	LossBurstS float64  `json:"loss_burst_s,omitempty"`
	// ReorderRate delays this fraction of packets by ReorderExtraMs for
	// ReorderBurstS seconds of virtual time, reordering them past
	// packets sent later.
	ReorderRate    *float64 `json:"reorder_rate,omitempty"`
	ReorderExtraMs float64  `json:"reorder_extra_ms,omitempty"`
	ReorderBurstS  float64  `json:"reorder_burst_s,omitempty"`
	// Checkpoint names the registry artifact to swap in; the serving
	// layer resolves it into Swap.
	Checkpoint string     `json:"checkpoint,omitempty"`
	Swap       *ModelSwap `json:"-"`
}

func (mu *Mutation) validate() error {
	if mu.BandwidthScale < 0 {
		return fmt.Errorf("session: bandwidth_scale must be positive, got %g", mu.BandwidthScale)
	}
	if mu.LossRate != nil && (*mu.LossRate < 0 || *mu.LossRate >= 1) {
		return fmt.Errorf("session: loss_rate must be in [0, 1), got %g", *mu.LossRate)
	}
	if mu.ReorderRate != nil && (*mu.ReorderRate < 0 || *mu.ReorderRate > 1) {
		return fmt.Errorf("session: reorder_rate must be in [0, 1], got %g", *mu.ReorderRate)
	}
	if mu.BandwidthScale == 0 && mu.LossRate == nil && mu.ReorderRate == nil &&
		mu.Checkpoint == "" && mu.Swap == nil {
		return fmt.Errorf("session: mutation changes nothing")
	}
	return nil
}

// pathShim is the mutable cc.Network the flow actually sends over.
// All fields are touched only from the session's run goroutine (and
// the sim callbacks it drives), so no locking is needed.
type pathShim struct {
	sched *sim.Scheduler
	inner cc.Network
	rng   *rand.Rand

	lossRate  float64
	lossUntil sim.Time

	reorderRate  float64
	reorderExtra sim.Time
	reorderUntil sim.Time
}

func (p *pathShim) Now() sim.Time { return p.sched.Now() }

func (p *pathShim) Send(size int, onDeliver func(recv sim.Time), onDrop func()) {
	now := p.sched.Now()
	if p.lossRate > 0 && now < p.lossUntil && p.rng.Float64() < p.lossRate {
		onDrop()
		return
	}
	if p.reorderRate > 0 && now < p.reorderUntil && p.rng.Float64() < p.reorderRate {
		extra, deliver := p.reorderExtra, onDeliver
		onDeliver = func(recv sim.Time) {
			p.sched.After(extra, func() { deliver(recv + extra) })
		}
	}
	p.inner.Send(size, onDeliver, onDrop)
}

// mlNet adapts an iBoxML hierarchical predictor to the cc.Network
// contract: each packet is priced by the amortized per-packet delay
// model (§4.2) and delivered that many milliseconds later. Loss is not
// part of the learned model; injected bursts live in the shim above.
type mlNet struct {
	sched      *sim.Scheduler
	model      *iboxml.Model
	h          *iboxml.HierarchicalPredictor
	delayScale float64 // bandwidth scale s ⇒ delays × 1/s
	score      func(pit, nll float64)
}

func (n *mlNet) Now() sim.Time { return n.sched.Now() }

func (n *mlNet) Send(size int, onDeliver func(recv sim.Time), onDrop func()) {
	d := n.h.PacketDelay(n.sched.Now(), size)
	if n.score != nil {
		mu, sigma := n.h.Group()
		n.score(n.model.ScoreDelay(mu, sigma, d))
	}
	d *= n.delayScale
	dt := sim.Time(d * float64(sim.Millisecond))
	if dt < 1 {
		dt = 1
	}
	n.sched.After(dt, func() { onDeliver(n.sched.Now()) })
}

// trimCrossTraffic drops the windows of a cross-traffic series that lie
// entirely before `now`. Rebuilding an iboxnet path mid-session must
// not re-inject windows that already played out: netsim's Replay clamps
// past send times to "now", which would dump their bytes onto the fresh
// queue all at once.
func trimCrossTraffic(ct *trace.Series, now sim.Time) *trace.Series {
	if ct == nil || ct.Step <= 0 {
		return ct
	}
	skip := 0
	for skip < len(ct.Vals) && ct.TimeAt(skip+1) <= now {
		skip++
	}
	if skip == 0 {
		return ct
	}
	return &trace.Series{
		Start: ct.TimeAt(skip),
		Step:  ct.Step,
		Vals:  ct.Vals[skip:],
	}
}

// buildNetwork instantiates the session's current artifact on sched.
// rebuilds counts path rebuilds so each instantiation draws an
// independent (but deterministic) random stream.
func (s *Session) buildNetwork(rebuilds int) (cc.Network, error) {
	seed := s.cfg.Seed + int64(rebuilds)*1_000_003
	switch s.kind {
	case KindIBoxNet:
		p := s.net
		if s.bwScale != 1 {
			p.Bandwidth *= s.bwScale
		}
		p.CrossTraffic = trimCrossTraffic(p.CrossTraffic, s.sched.Now())
		return p.Emulate(s.sched, s.variant, seed).Port("main"), nil
	case KindIBoxML:
		if s.ml == nil {
			return nil, fmt.Errorf("session: iboxml session has no model")
		}
		scale := 1.0
		if s.bwScale > 0 {
			scale = 1 / s.bwScale
		}
		var score func(pit, nll float64)
		if s.cfg.Score != nil {
			score = s.cfg.Score(s.checkpoint)
		}
		return &mlNet{
			sched:      s.sched,
			model:      s.ml,
			h:          s.ml.NewHierarchical(seed),
			delayScale: scale,
			score:      score,
		}, nil
	}
	return nil, fmt.Errorf("session: unknown model kind %q", s.kind)
}

// applyMutation executes one mutation inside the run goroutine, between
// ticks, and returns the applied record for the event stream. The
// scheduler is quiescent (RunUntil returned), so rebuilding a path —
// which schedules fresh cross-traffic and token-bucket events — is
// safe.
func (s *Session) applyMutation(mu Mutation) (*AppliedMutation, error) {
	if err := mu.validate(); err != nil {
		return nil, err
	}
	applied := &AppliedMutation{}
	now := s.sched.Now()

	if mu.Swap != nil {
		// kind and checkpoint are read by Info from other goroutines.
		s.infoMu.Lock()
		s.kind = mu.Swap.Kind
		s.checkpoint = mu.Swap.Checkpoint
		s.infoMu.Unlock()
		s.net = mu.Swap.Net
		s.variant = mu.Swap.Variant
		s.ml = mu.Swap.ML
		applied.Checkpoint = mu.Swap.Checkpoint
	}
	if mu.BandwidthScale > 0 && mu.BandwidthScale != 1 {
		s.bwScale *= mu.BandwidthScale
		applied.BandwidthScale = mu.BandwidthScale
		if s.kind == KindIBoxNet {
			applied.BandwidthBps = s.net.Bandwidth * s.bwScale * 8
		}
	}
	if mu.Swap != nil || applied.BandwidthScale != 0 {
		s.rebuilds++
		inner, err := s.buildNetwork(s.rebuilds)
		if err != nil {
			return nil, err
		}
		s.shim.inner = inner
	}
	if mu.LossRate != nil {
		s.shim.lossRate = *mu.LossRate
		s.shim.lossUntil = burstEnd(now, mu.LossBurstS)
		applied.LossRate = *mu.LossRate
		applied.LossBurstS = mu.LossBurstS
	}
	if mu.ReorderRate != nil {
		s.shim.reorderRate = *mu.ReorderRate
		s.shim.reorderExtra = sim.Time(mu.ReorderExtraMs * float64(sim.Millisecond))
		if s.shim.reorderExtra <= 0 {
			s.shim.reorderExtra = 20 * sim.Millisecond
		}
		s.shim.reorderUntil = burstEnd(now, mu.ReorderBurstS)
		applied.ReorderRate = *mu.ReorderRate
		applied.ReorderExtraMs = s.shim.reorderExtra.Millis()
		applied.ReorderBurstS = mu.ReorderBurstS
	}
	return applied, nil
}

// burstEnd converts a burst duration in seconds into the virtual
// deadline it expires at; 0 means "until changed again".
func burstEnd(now sim.Time, burstS float64) sim.Time {
	if burstS <= 0 {
		return sim.Time(math.MaxInt64)
	}
	return now + sim.FromSeconds(burstS)
}
