package session

import (
	"os"
	"testing"

	"ibox/internal/leakcheck"
)

// TestMain fails the package if any session goroutine outlives the
// tests — a run loop that missed its close, a subscriber stuck on the
// ring, or a reaper that Shutdown failed to stop.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m, "ibox/internal/session", "ibox/internal/par"))
}
