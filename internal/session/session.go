// Package session turns a learned path artifact into a *live emulation
// session*: a long-lived stateful object that runs a congestion-control
// sender closed-loop against the model's per-packet delay/loss
// predictions, streams per-packet and per-RTT telemetry to any number
// of subscribers, and accepts mid-session path mutations (bandwidth
// rescale, loss/reorder bursts, checkpoint swap) the way `tc` changes a
// live interface.
//
// Each session owns a private deterministic simulation (a sim.Scheduler
// driving a cc.Flow over the artifact, exactly core.Model.Run's
// closed-loop setup) and one run goroutine that advances it in fixed
// virtual-time ticks, pacing virtual against wall time by Config.Speed.
// All virtual-side state is touched only by the run goroutine; control
// operations (pause, resume, mutate, close) rendezvous with it over an
// unbuffered channel and execute between ticks, so a mutation lands at
// a tick boundary with the scheduler quiescent.
//
// Determinism: the telemetry stream's content depends only on the
// artifact, the sender, and the seed. Wall pacing, subscriber count and
// pool scheduling decide *when* events are published, never what they
// say — the same (checkpoint, sender, seed) yields a byte-identical
// stream, serial or pooled (see TestSessionDeterministic).
package session

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ibox/internal/cc"
	"ibox/internal/iboxml"
	"ibox/internal/iboxnet"
	"ibox/internal/par"
	"ibox/internal/sim"
)

// Model kinds a session can run.
const (
	KindIBoxNet = "iboxnet"
	KindIBoxML  = "iboxml"
)

// State is a session's lifecycle state.
type State int32

const (
	// Running sessions advance virtual time.
	Running State = iota
	// Paused sessions hold virtual time still but keep their state and
	// subscribers; Resume continues exactly where Pause left off.
	Paused
	// Closed sessions are finished (client close, drain, or the
	// configured duration completing) and will never emit again.
	Closed
	// Expired sessions were reaped by the idle-TTL policy.
	Expired
)

func (st State) String() string {
	switch st {
	case Running:
		return "running"
	case Paused:
		return "paused"
	case Closed:
		return "closed"
	case Expired:
		return "expired"
	}
	return fmt.Sprintf("state(%d)", int32(st))
}

// terminal reports whether the state is final.
func (st State) terminal() bool { return st == Closed || st == Expired }

// ErrClosed is returned by control operations on a finished session.
var ErrClosed = errors.New("session: closed")

// Config parameterizes one session. Zero values select defaults.
type Config struct {
	// ID names the session (assigned by the Manager when empty).
	ID string
	// Tenant attributes the session for per-tenant caps.
	Tenant string
	// Checkpoint is the registry id of the artifact (display + swap
	// bookkeeping).
	Checkpoint string

	// Kind selects the artifact type; exactly one of Net/ML applies.
	Kind    string
	Net     iboxnet.Params  // when Kind == KindIBoxNet
	Variant iboxnet.Variant // iboxnet emulation variant
	ML      *iboxml.Model   // when Kind == KindIBoxML

	// Protocol is the congestion-control sender, any cc.Protocols() name.
	Protocol string
	// Seed drives all of the session's randomness.
	Seed int64

	// Speed is the virtual/wall time ratio: 1 = real time, 10 = ten
	// virtual seconds per wall second. 0 selects 1; negative runs
	// unpaced (as fast as the scheduler steps).
	Speed float64
	// Tick is the virtual-time step per run-loop iteration (the
	// granularity at which mutations land); default 50ms.
	Tick sim.Time
	// Summary is the rollup-event cadence in virtual time; default 200ms.
	Summary sim.Time
	// Duration bounds the session's virtual lifetime; default 3600s.
	Duration sim.Time
	// PacketEvery emits a packet event for every Nth acknowledged
	// packet; default 1 (every packet), negative disables packet events.
	PacketEvery int
	// PacketSize is the sender's packet size in bytes; default 1500.
	PacketSize int
	// AckDelay is the return-path delay; default Net.PropDelay for
	// iboxnet artifacts, the cc harness default otherwise.
	AckDelay sim.Time
	// RingSize bounds the replay buffer of encoded events a late or
	// slow subscriber can catch up from; default 4096.
	RingSize int

	// Pool, when non-nil, runs each tick's simulation work on the shared
	// worker pool so sessions cannot oversubscribe the cores; nil steps
	// inline on the run goroutine.
	Pool *par.Pool

	// Score, when non-nil, is invoked at every path (re)build with the
	// session's current checkpoint id and returns that model's per-packet
	// drift observer — one (PIT, NLL) pair per ML-predicted delay against
	// the model's own group distribution — or nil to disable scoring.
	// Re-resolving per build keeps live drift attributed to the model
	// actually producing packets after a mid-session checkpoint swap
	// (including a session that starts on an iboxnet artifact and swaps
	// to an ML one). The returned observer runs in simulation context;
	// it must not block.
	Score func(model string) func(pit, nll float64)

	// OnClose fires once, from the run goroutine, after the session
	// reaches a terminal state (the Manager uses it to unregister).
	OnClose func(*Session)

	// onEvent and onMutate are the Manager's metric taps.
	onEvent  func(n int)
	onMutate func()
}

func (c Config) withDefaults() Config {
	if c.Speed == 0 {
		c.Speed = 1
	}
	if c.Tick <= 0 {
		c.Tick = 50 * sim.Millisecond
	}
	if c.Summary <= 0 {
		c.Summary = 200 * sim.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 3600 * sim.Second
	}
	if c.PacketEvery == 0 {
		c.PacketEvery = 1
	}
	if c.PacketSize <= 0 {
		c.PacketSize = 1500
	}
	if c.AckDelay <= 0 && c.Kind == KindIBoxNet && c.Net.PropDelay > 0 {
		c.AckDelay = c.Net.PropDelay
	}
	if c.RingSize <= 0 {
		c.RingSize = 4096
	}
	return c
}

// ctlOp is one control operation awaiting execution in the run
// goroutine. The ctl channel is unbuffered, so a successful send proves
// the run goroutine took the op and will reply.
type ctlOp struct {
	fn    func() error
	reply chan error
}

// Session is one live emulation session. See the package comment for
// the concurrency structure.
type Session struct {
	cfg Config

	// Virtual-side state: run goroutine (and the sim callbacks it
	// drives) only.
	sched    *sim.Scheduler
	flow     *cc.Flow
	sender   cc.Sender
	shim     *pathShim
	net      iboxnet.Params
	variant  iboxnet.Variant
	ml       *iboxml.Model
	bwScale  float64
	rebuilds int
	end      sim.Time
	pending  []Event
	nextSeq  int64
	acks     int64
	lost     int64
	sumBase  int64 // delivered bytes at the last summary event

	// infoMu guards the fields a checkpoint swap rewrites (applyMutation,
	// on the run goroutine) and Info reads from any goroutine. The run
	// goroutine is the only writer, so its own reads (buildNetwork) need
	// no lock.
	infoMu     sync.Mutex
	kind       string
	checkpoint string

	// Control plane.
	ctl  chan ctlOp
	done chan struct{}
	ring *ring

	state      atomic.Int32
	vt         atomic.Int64 // published virtual time, ns
	events     atomic.Int64
	mutations  atomic.Int64
	subs       atomic.Int64
	lastActive atomic.Int64 // unix nanos of the last client interaction
	createdAt  time.Time
}

// New validates cfg, builds the session's private simulation, and
// starts its run goroutine in the Running state.
func New(cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if cfg.ID == "" {
		return nil, fmt.Errorf("session: Config.ID is required")
	}
	if cfg.Kind != KindIBoxNet && cfg.Kind != KindIBoxML {
		return nil, fmt.Errorf("session: unknown model kind %q", cfg.Kind)
	}
	if cfg.Kind == KindIBoxML && cfg.ML == nil {
		return nil, fmt.Errorf("session: iboxml session requires a model")
	}
	sender, err := cc.NewSender(cfg.Protocol, cfg.PacketSize)
	if err != nil {
		return nil, err
	}

	s := &Session{
		cfg:        cfg,
		sched:      sim.NewScheduler(),
		sender:     sender,
		kind:       cfg.Kind,
		net:        cfg.Net,
		variant:    cfg.Variant,
		ml:         cfg.ML,
		bwScale:    1,
		end:        cfg.Duration,
		checkpoint: cfg.Checkpoint,
		ctl:        make(chan ctlOp),
		done:       make(chan struct{}),
		ring:       newRing(cfg.RingSize),
		createdAt:  time.Now(),
	}
	s.touch()
	s.shim = &pathShim{sched: s.sched, rng: sim.NewRand(cfg.Seed, 911)}
	inner, err := s.buildNetwork(0)
	if err != nil {
		return nil, err
	}
	s.shim.inner = inner
	s.flow = cc.NewFlow(s.sched, s.shim, sender, cc.FlowConfig{
		PacketSize:     cfg.PacketSize,
		AckDelay:       cfg.AckDelay,
		Duration:       cfg.Duration,
		OnAck:          s.onAck,
		OnLossDetected: s.onLoss,
	})
	s.flow.Start()
	var sumTick func()
	sumTick = func() {
		s.emitSummary()
		if s.sched.Now()+cfg.Summary <= s.end {
			s.sched.After(cfg.Summary, sumTick)
		}
	}
	s.sched.After(cfg.Summary, sumTick)

	s.state.Store(int32(Running))
	go s.run()
	return s, nil
}

// Accessors safe from any goroutine.

// ID returns the session's identifier.
func (s *Session) ID() string { return s.cfg.ID }

// Tenant returns the session's tenant attribution.
func (s *Session) Tenant() string { return s.cfg.Tenant }

// State returns the current lifecycle state.
func (s *Session) State() State { return State(s.state.Load()) }

// Done is closed once the session reaches a terminal state and its run
// goroutine has exited.
func (s *Session) Done() <-chan struct{} { return s.done }

// Subscribers reports how many event subscriptions are attached.
func (s *Session) Subscribers() int { return int(s.subs.Load()) }

// touch records a client interaction for the idle-TTL reaper.
func (s *Session) touch() { s.lastActive.Store(time.Now().UnixNano()) }

// Info is a session's control-plane snapshot (GET /sessions, /statusz).
type Info struct {
	ID          string    `json:"id"`
	Tenant      string    `json:"tenant"`
	Checkpoint  string    `json:"checkpoint"`
	Kind        string    `json:"kind"`
	Protocol    string    `json:"protocol"`
	Seed        int64     `json:"seed"`
	State       string    `json:"state"`
	VTSeconds   float64   `json:"vt_s"`
	Events      int64     `json:"events"`
	Mutations   int64     `json:"mutations"`
	Subscribers int       `json:"subscribers"`
	CreatedAt   time.Time `json:"created_at"`
	IdleS       float64   `json:"idle_s"`
}

// Info snapshots the session's control-plane view.
func (s *Session) Info() Info {
	s.infoMu.Lock()
	ckpt := s.checkpoint
	kind := s.kind
	s.infoMu.Unlock()
	return Info{
		ID:          s.cfg.ID,
		Tenant:      s.cfg.Tenant,
		Checkpoint:  ckpt,
		Kind:        kind,
		Protocol:    s.cfg.Protocol,
		Seed:        s.cfg.Seed,
		State:       s.State().String(),
		VTSeconds:   sim.Time(s.vt.Load()).Seconds(),
		Events:      s.events.Load(),
		Mutations:   s.mutations.Load(),
		Subscribers: s.Subscribers(),
		CreatedAt:   s.createdAt,
		IdleS:       time.Since(time.Unix(0, s.lastActive.Load())).Seconds(),
	}
}

// Control operations. Each rendezvouses with the run goroutine and
// executes between ticks.

// do submits fn to the run goroutine and waits for its result.
func (s *Session) do(fn func() error) error {
	op := ctlOp{fn: fn, reply: make(chan error, 1)}
	select {
	case s.ctl <- op:
		return <-op.reply
	case <-s.done:
		return ErrClosed
	}
}

// Pause suspends virtual time. Idempotent.
func (s *Session) Pause() error {
	s.touch()
	return s.do(func() error {
		if s.State() == Paused {
			return nil
		}
		s.state.Store(int32(Paused))
		s.emitState(Paused, "client")
		s.publishPending()
		return nil
	})
}

// Resume continues a paused session. Idempotent.
func (s *Session) Resume() error {
	s.touch()
	return s.do(func() error {
		if s.State() == Running {
			return nil
		}
		s.state.Store(int32(Running))
		s.emitState(Running, "client")
		s.publishPending()
		return nil
	})
}

// Mutate applies a live path change at the next tick boundary.
func (s *Session) Mutate(mu Mutation) error {
	s.touch()
	return s.do(func() error {
		applied, err := s.applyMutation(mu)
		if err != nil {
			return err
		}
		s.mutations.Add(1)
		if s.cfg.onMutate != nil {
			s.cfg.onMutate()
		}
		s.pending = append(s.pending, Event{
			Type:     EventMutate,
			VT:       s.sched.Now().Seconds(),
			Mutation: applied,
		})
		s.publishPending()
		return nil
	})
}

// Close finishes the session with the given reason ("client", "drain").
// Closing a finished session is a no-op.
func (s *Session) Close(reason string) error {
	err := s.do(func() error {
		s.finish(Closed, reason)
		return nil
	})
	if errors.Is(err, ErrClosed) {
		return nil
	}
	return err
}

// expire is Close for the idle-TTL reaper. The reaper's scan decided
// the session was idle *before* this op reached the run goroutine, so
// the idle conditions are re-checked here: a subscriber that attached
// (or any control-plane touch) in that window aborts the expiry instead
// of having its just-opened stream cut with an "idle ttl" end event.
// now is the reaper's scan time, ttl the idle deadline.
func (s *Session) expire(now time.Time, ttl time.Duration) {
	err := s.do(func() error {
		if s.Subscribers() > 0 {
			return nil
		}
		if ttl > 0 && now.Sub(time.Unix(0, s.lastActive.Load())) < ttl {
			return nil
		}
		s.finish(Expired, "idle ttl")
		return nil
	})
	_ = err
}

// The run loop.

func (s *Session) run() {
	defer func() {
		s.ring.closeRing()
		close(s.done)
		if s.cfg.OnClose != nil {
			s.cfg.OnClose(s)
		}
	}()

	s.emitState(Running, "created")
	s.publishPending()

	var wallTick time.Duration
	if s.cfg.Speed > 0 {
		wallTick = time.Duration(float64(s.cfg.Tick) / s.cfg.Speed)
	}
	next := time.Now()
	for {
		if !s.drainCtl() {
			return
		}
		if s.State() == Paused {
			// Hold virtual time; block until the next control op.
			op := <-s.ctl
			op.reply <- op.fn()
			next = time.Now() // re-anchor wall pacing after the pause
			continue
		}

		target := s.sched.Now() + s.cfg.Tick
		if target > s.end {
			target = s.end
		}
		s.step(target)
		s.publishPending()
		if target >= s.end {
			s.finish(Closed, "complete")
			return
		}

		if wallTick > 0 {
			next = next.Add(wallTick)
			if !s.sleepUntil(next) {
				return
			}
			// A long scheduler stall (or debugger pause) must not trigger
			// a burst of catch-up ticks.
			if time.Until(next) < -time.Second {
				next = time.Now()
			}
		}
	}
}

// drainCtl executes queued control ops without blocking; false once
// the session is terminal.
func (s *Session) drainCtl() bool {
	for {
		select {
		case op := <-s.ctl:
			op.reply <- op.fn()
			if s.State().terminal() {
				return false
			}
		default:
			return !s.State().terminal()
		}
	}
}

// sleepUntil paces the run loop against the wall clock, staying
// responsive to control ops; false once the session is terminal.
func (s *Session) sleepUntil(deadline time.Time) bool {
	for {
		d := time.Until(deadline)
		if d <= 0 {
			return !s.State().terminal()
		}
		timer := time.NewTimer(d)
		select {
		case op := <-s.ctl:
			timer.Stop()
			op.reply <- op.fn()
			if s.State().terminal() {
				return false
			}
			if s.State() == Paused {
				return true // run loop re-enters its paused branch
			}
		case <-timer.C:
			return !s.State().terminal()
		}
	}
}

// step advances the simulation to target, on the shared pool when
// configured (one job per tick: the pool serializes sessions against
// request work without oversubscribing cores). A closed pool — the
// server is past drain — steps inline so the session can still finish.
func (s *Session) step(target sim.Time) {
	run := func() error {
		s.sched.RunUntil(target)
		return nil
	}
	if s.cfg.Pool != nil {
		if err := s.cfg.Pool.Do(context.Background(), run); err == nil {
			s.vt.Store(int64(s.sched.Now()))
			return
		}
	}
	run()
	s.vt.Store(int64(s.sched.Now()))
}

// finish moves the session to a terminal state (idempotent).
func (s *Session) finish(st State, reason string) {
	if s.State().terminal() {
		return
	}
	s.state.Store(int32(st))
	s.emitState(st, reason)
	s.publishPending()
}

// Event generation (run goroutine / sim callbacks only).

// onAck is the cc.Flow per-ack telemetry hook.
func (s *Session) onAck(ack cc.Ack) {
	s.acks++
	if s.cfg.PacketEvery < 0 || s.acks%int64(s.cfg.PacketEvery) != 0 {
		return
	}
	s.pending = append(s.pending, Event{
		Type: EventPacket,
		VT:   ack.AckTime.Seconds(),
		Packet: &PacketEvent{
			Seq:       ack.Seq,
			DelayMs:   ack.OWD().Millis(),
			RTTMs:     ack.RTT().Millis(),
			Cwnd:      s.sender.Window(),
			Inflight:  s.flow.Inflight(),
			Delivered: ack.Delivered,
		},
	})
}

// onLoss is the cc.Flow loss-detection hook.
func (s *Session) onLoss(at sim.Time, seq int64) {
	s.lost++
	if s.cfg.PacketEvery < 0 {
		return
	}
	s.pending = append(s.pending, Event{
		Type: EventLoss,
		VT:   at.Seconds(),
		Loss: &LossEvent{Seq: seq, Cwnd: s.sender.Window()},
	})
}

// emitSummary rolls up the last summary interval.
func (s *Session) emitSummary() {
	delivered := s.flow.DeliveredBytes()
	thr := float64(delivered-s.sumBase) * 8 / s.cfg.Summary.Seconds()
	s.sumBase = delivered
	s.pending = append(s.pending, Event{
		Type: EventSummary,
		VT:   s.sched.Now().Seconds(),
		Summary: &SummaryEvent{
			Cwnd:          s.sender.Window(),
			Inflight:      s.flow.Inflight(),
			SRTTMs:        s.flow.SRTT().Millis(),
			ThroughputBps: thr,
			Sent:          s.flow.Sent(),
			Delivered:     delivered,
			Lost:          s.lost,
		},
	})
}

// emitState appends a lifecycle event.
func (s *Session) emitState(st State, reason string) {
	s.pending = append(s.pending, Event{
		Type:   EventState,
		VT:     s.sched.Now().Seconds(),
		State:  st.String(),
		Reason: reason,
	})
}

// publishPending encodes and publishes the buffered events in order.
func (s *Session) publishPending() {
	if len(s.pending) == 0 {
		return
	}
	n := len(s.pending)
	for i := range s.pending {
		ev := &s.pending[i]
		s.nextSeq++
		ev.Seq = s.nextSeq
		b, err := json.Marshal(ev)
		if err != nil {
			continue // cannot happen: Event is a plain struct
		}
		s.ring.add(ev.Seq, b)
	}
	s.pending = s.pending[:0]
	s.vt.Store(int64(s.sched.Now()))
	s.events.Add(int64(n))
	if s.cfg.onEvent != nil {
		s.cfg.onEvent(n)
	}
}
