package session

// The telemetry stream. A session emits a totally ordered sequence of
// events; each event is JSON-encoded exactly once, at publish time, and
// the encoded bytes are what every subscriber sees — so the stream a
// client receives is byte-identical across runs with the same
// (checkpoint, sender, seed), whether the session stepped on the shared
// pool or inline, and regardless of how many subscribers watched or
// when they attached (modulo the ring buffer's retention window).
//
// Event content depends only on *virtual* time: the simulated clock,
// packet sequence numbers, and sender state. Wall-clock pacing decides
// when events are published, never what they say.

// Event types.
const (
	// EventState marks a lifecycle transition; State carries the new
	// state and Reason why ("client", "complete", "idle ttl", "drain").
	EventState = "state"
	// EventPacket is per-packet telemetry for one acknowledged packet.
	EventPacket = "packet"
	// EventLoss reports one packet the transport declared lost.
	EventLoss = "loss"
	// EventSummary is the per-RTT-scale rollup (cwnd, inflight,
	// throughput) emitted every Config.Summary of virtual time.
	EventSummary = "summary"
	// EventMutate records a path mutation the session applied.
	EventMutate = "mutate"
)

// Event is one telemetry record. Seq is the session-wide sequence
// number (also the SSE event id); VT is the virtual time in seconds at
// which the event happened inside the emulation.
type Event struct {
	Seq  int64   `json:"seq"`
	Type string  `json:"type"`
	VT   float64 `json:"vt"`

	State  string `json:"state,omitempty"`
	Reason string `json:"reason,omitempty"`

	Packet   *PacketEvent     `json:"packet,omitempty"`
	Loss     *LossEvent       `json:"loss,omitempty"`
	Summary  *SummaryEvent    `json:"summary,omitempty"`
	Mutation *AppliedMutation `json:"mutation,omitempty"`
}

// PacketEvent is the per-packet telemetry tap: one acknowledged packet
// as the sender saw it.
type PacketEvent struct {
	Seq       int64   `json:"pkt"`
	DelayMs   float64 `json:"delay_ms"` // one-way delay
	RTTMs     float64 `json:"rtt_ms"`
	Cwnd      int     `json:"cwnd"`     // sender window, packets (0 = rate-based)
	Inflight  int     `json:"inflight"` // outstanding packets after this ack
	Delivered int64   `json:"delivered_bytes"`
}

// LossEvent reports one packet declared lost (dupack gap or RTO).
type LossEvent struct {
	Seq  int64 `json:"pkt"`
	Cwnd int   `json:"cwnd"` // sender window after the loss reaction
}

// SummaryEvent is the rolled-up view over the last summary interval.
type SummaryEvent struct {
	Cwnd          int     `json:"cwnd"`
	Inflight      int     `json:"inflight"`
	SRTTMs        float64 `json:"srtt_ms"`
	ThroughputBps float64 `json:"throughput_bps"` // delivered bits/s over the interval
	Sent          int64   `json:"sent"`           // cumulative packets transmitted
	Delivered     int64   `json:"delivered_bytes"`
	Lost          int64   `json:"lost"` // cumulative packets declared lost
}

// AppliedMutation records what a path mutation did, in the event
// stream and in session Info.
type AppliedMutation struct {
	BandwidthScale float64 `json:"bandwidth_scale,omitempty"`
	BandwidthBps   float64 `json:"bandwidth_bps,omitempty"` // resulting rate (iboxnet)
	LossRate       float64 `json:"loss_rate,omitempty"`
	LossBurstS     float64 `json:"loss_burst_s,omitempty"`
	ReorderRate    float64 `json:"reorder_rate,omitempty"`
	ReorderExtraMs float64 `json:"reorder_extra_ms,omitempty"`
	ReorderBurstS  float64 `json:"reorder_burst_s,omitempty"`
	Checkpoint     string  `json:"checkpoint,omitempty"` // swapped-in model
}
