package session

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ibox/internal/obs"
	"ibox/internal/par"
)

// Manager owns the server's live sessions: it enforces the global and
// per-tenant caps (the admission-control layer for long-lived stateful
// clients, where the request path's semaphore handles one-shot work),
// reaps idle sessions past their TTL, publishes the serve.session.*
// metric family, and checkpoints session descriptors at drain.

// Limits bound the session population.
type Limits struct {
	// MaxSessions caps live sessions across all tenants; default 256.
	MaxSessions int
	// MaxPerTenant caps live sessions per tenant; default MaxSessions.
	MaxPerTenant int
	// TTL is the idle deadline: a session with no subscribers and no
	// control-plane interaction for this long is expired by the reaper.
	// 0 selects 15 minutes; negative disables reaping.
	TTL time.Duration
	// ReapEvery is the reaper's scan interval; default min(TTL/4, 5s).
	ReapEvery time.Duration
}

func (l Limits) withDefaults() Limits {
	if l.MaxSessions <= 0 {
		l.MaxSessions = 256
	}
	if l.MaxPerTenant <= 0 {
		l.MaxPerTenant = l.MaxSessions
	}
	if l.TTL == 0 {
		l.TTL = 15 * time.Minute
	}
	if l.ReapEvery <= 0 {
		l.ReapEvery = l.TTL / 4
		if l.ReapEvery > 5*time.Second {
			l.ReapEvery = 5 * time.Second
		}
		if l.ReapEvery < 10*time.Millisecond {
			l.ReapEvery = 10 * time.Millisecond
		}
	}
	return l
}

// Capacity errors, distinguished so the front door can shed with the
// right reason label.
var (
	ErrSessionLimit = errors.New("session: server session limit reached")
	ErrTenantLimit  = errors.New("session: tenant session limit reached")
	ErrNotFound     = errors.New("session: not found")
	ErrDraining     = errors.New("session: manager draining")
)

// Manager tracks live sessions. All methods are safe for concurrent
// use.
type Manager struct {
	limits Limits
	pool   *par.Pool

	mu        sync.Mutex
	sessions  map[string]*Session
	reserved  map[string]struct{} // ids admitted but not yet in sessions
	perTenant map[string]int
	total     int // reserved slots (admitted, possibly not yet in sessions)
	draining  bool

	seq atomic.Uint64

	reapStop chan struct{}
	reapDone chan struct{}
	reapOnce sync.Once

	// serve.session.* metric family (nil handles when obs disabled).
	active    *obs.Gauge      // serve.session.active
	byState   *obs.GaugeVec   // serve.session.state{state}
	byTenant  *obs.GaugeVec   // serve.session.tenant{tenant}
	created   *obs.Counter    // serve.session.created
	closed    *obs.Counter    // serve.session.closed
	expired   *obs.Counter    // serve.session.expired
	mutations *obs.Counter    // serve.session.mutations
	events    *obs.Counter    // serve.session.events
	shed      *obs.CounterVec // serve.session.shed{reason}
}

// NewManager builds a manager enforcing limits. pool, when non-nil, is
// handed to every session so their tick work shares the server's
// worker pool.
func NewManager(limits Limits, pool *par.Pool) *Manager {
	m := &Manager{
		limits:    limits.withDefaults(),
		pool:      pool,
		sessions:  make(map[string]*Session),
		reserved:  make(map[string]struct{}),
		perTenant: make(map[string]int),
	}
	if r := obs.Get(); r != nil {
		m.active = r.Gauge("serve.session.active")
		m.byState = r.GaugeVec("serve.session.state", "state")
		m.byTenant = r.GaugeVec("serve.session.tenant", "tenant")
		m.created = r.Counter("serve.session.created")
		m.closed = r.Counter("serve.session.closed")
		m.expired = r.Counter("serve.session.expired")
		m.mutations = r.Counter("serve.session.mutations")
		m.events = r.Counter("serve.session.events")
		m.shed = r.CounterVec("serve.session.shed", "reason")
	}
	if m.limits.TTL > 0 {
		m.reapStop = make(chan struct{})
		m.reapDone = make(chan struct{})
		go m.reapLoop()
	}
	return m
}

// Limits returns the manager's effective limits.
func (m *Manager) Limits() Limits { return m.limits }

// Create admits and starts a new session. The Manager fills in the ID
// (when empty), the shared pool, and its bookkeeping hooks.
func (m *Manager) Create(cfg Config) (*Session, error) {
	if cfg.Tenant == "" {
		cfg.Tenant = "default"
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.shed.With("draining").Add(1)
		return nil, ErrDraining
	}
	if m.total >= m.limits.MaxSessions {
		m.mu.Unlock()
		m.shed.With("sessions_full").Add(1)
		return nil, fmt.Errorf("%w (%d)", ErrSessionLimit, m.limits.MaxSessions)
	}
	if m.perTenant[cfg.Tenant] >= m.limits.MaxPerTenant {
		m.mu.Unlock()
		m.shed.With("tenant_sessions_full").Add(1)
		return nil, fmt.Errorf("%w (%s: %d)", ErrTenantLimit, cfg.Tenant, m.limits.MaxPerTenant)
	}
	if cfg.ID == "" {
		cfg.ID = fmt.Sprintf("s-%d", m.seq.Add(1))
	}
	if m.idTaken(cfg.ID) {
		m.mu.Unlock()
		return nil, fmt.Errorf("session: id %q already exists", cfg.ID)
	}
	// Reserve the slot AND the id under one critical section, so two
	// concurrent Creates with the same explicit id cannot both pass the
	// dup check and silently overwrite each other in m.sessions. Both
	// are released if New fails.
	m.reserved[cfg.ID] = struct{}{}
	m.total++
	m.perTenant[cfg.Tenant]++
	m.mu.Unlock()

	if cfg.Pool == nil {
		cfg.Pool = m.pool
	}
	cfg.onEvent = func(n int) { m.events.Add(int64(n)) }
	cfg.onMutate = func() { m.mutations.Add(1) }
	userClose := cfg.OnClose
	cfg.OnClose = func(s *Session) {
		m.remove(s)
		if userClose != nil {
			userClose(s)
		}
	}
	s, err := New(cfg)
	if err != nil {
		m.mu.Lock()
		delete(m.reserved, cfg.ID)
		m.release(cfg.Tenant)
		m.mu.Unlock()
		return nil, err
	}
	m.mu.Lock()
	delete(m.reserved, s.ID())
	m.sessions[s.ID()] = s
	m.mu.Unlock()
	// A very short session (tiny Duration, unpaced) can reach its
	// terminal state before the registration above; its OnClose→remove
	// then found nothing to delete, so unregister it here. remove is
	// idempotent, and ids are unique among live sessions, so at most one
	// of the two calls finds the entry.
	if s.State().terminal() {
		m.remove(s)
	}
	m.created.Add(1)
	m.publishGauges()
	return s, nil
}

// idTaken reports whether id names a live or reserved session; m.mu
// must be held.
func (m *Manager) idTaken(id string) bool {
	if _, ok := m.sessions[id]; ok {
		return true
	}
	_, ok := m.reserved[id]
	return ok
}

// release returns a reserved slot under m.mu.
func (m *Manager) release(tenant string) {
	m.total--
	if m.perTenant[tenant] <= 1 {
		delete(m.perTenant, tenant)
		m.byTenant.With(tenant).Set(0)
	} else {
		m.perTenant[tenant]--
	}
}

// remove unregisters a finished session (the Session's OnClose hook).
// Idempotent: only the call that finds the registration releases the
// slot and counts the close.
func (m *Manager) remove(s *Session) {
	m.mu.Lock()
	_, ok := m.sessions[s.ID()]
	if ok {
		delete(m.sessions, s.ID())
		m.release(s.Tenant())
	}
	m.mu.Unlock()
	if !ok {
		return
	}
	if s.State() == Expired {
		m.expired.Add(1)
	} else {
		m.closed.Add(1)
	}
	m.publishGauges()
}

// Get returns a live session by id.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return s, nil
}

// List snapshots every live session, sorted by id.
func (m *Manager) List() []Info {
	m.mu.Lock()
	out := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, s)
	}
	m.mu.Unlock()
	infos := make([]Info, 0, len(out))
	for _, s := range out {
		infos = append(infos, s.Info())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// Active reports the number of live sessions.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// publishGauges republishes the session population gauges; also called
// by the serving tier's rolling collector so per-state counts track
// transitions that happen without population changes (pause/resume).
func (m *Manager) publishGauges() {
	if m.active == nil {
		return
	}
	m.mu.Lock()
	n := len(m.sessions)
	counts := make(map[State]int, 4)
	for _, s := range m.sessions {
		counts[s.State()]++
	}
	tenants := make(map[string]int, len(m.perTenant))
	for t, c := range m.perTenant {
		tenants[t] = c
	}
	m.mu.Unlock()
	m.active.Set(float64(n))
	for _, st := range []State{Running, Paused, Closed, Expired} {
		m.byState.With(st.String()).Set(float64(counts[st]))
	}
	for t, c := range tenants {
		m.byTenant.With(t).Set(float64(c))
	}
}

// PublishStats is publishGauges for external collectors.
func (m *Manager) PublishStats() { m.publishGauges() }

// reapLoop expires idle sessions: no subscribers and no control-plane
// interaction for TTL.
func (m *Manager) reapLoop() {
	defer close(m.reapDone)
	t := time.NewTicker(m.limits.ReapEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.reapOnceNow(time.Now())
		case <-m.reapStop:
			return
		}
	}
}

// reapOnceNow scans for idle sessions; split out so tests can force a
// scan without waiting for the ticker.
func (m *Manager) reapOnceNow(now time.Time) {
	m.mu.Lock()
	var idle []*Session
	for _, s := range m.sessions {
		if s.Subscribers() > 0 {
			continue
		}
		if now.Sub(time.Unix(0, s.lastActive.Load())) >= m.limits.TTL {
			idle = append(idle, s)
		}
	}
	m.mu.Unlock()
	for _, s := range idle {
		s.expire(now, m.limits.TTL)
	}
}

// SessionState is one session's descriptor in the drain checkpoint.
type SessionState struct {
	Info
	BandwidthScale float64 `json:"bandwidth_scale,omitempty"`
}

// Checkpoint writes every live session's descriptor to path, so an
// operator (or a restarting server) can see exactly what was running
// when the process drained. Written before sessions stop, from
// Shutdown.
func (m *Manager) Checkpoint(path string) error {
	infos := m.List()
	states := make([]SessionState, 0, len(infos))
	for _, in := range infos {
		states = append(states, SessionState{Info: in})
	}
	b, err := json.MarshalIndent(struct {
		DrainedAt time.Time      `json:"drained_at"`
		Sessions  []SessionState `json:"sessions"`
	}{DrainedAt: time.Now().UTC(), Sessions: states}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Shutdown drains the manager: no new sessions, every live session
// closed with reason "drain", the reaper stopped. Blocks until every
// session's run goroutine has exited.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	m.draining = true
	live := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		live = append(live, s)
	}
	m.mu.Unlock()
	for _, s := range live {
		s.Close("drain")
		<-s.Done()
	}
	if m.reapStop != nil {
		m.reapOnce.Do(func() {
			close(m.reapStop)
			<-m.reapDone
		})
	}
	m.publishGauges()
}
