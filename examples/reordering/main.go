// Behaviour discovery and melding — §5.1 / Figs 5 and 8.
//
// iBoxNet's single FIFO bottleneck can never reorder packets, but real
// (here: multipath cellular) paths do. This example walks the paper's
// recipe:
//
//  1. SAX-discretize inter-packet arrival times of real and iBoxNet-
//     simulated traces and diff the pattern sets — the missing symbol 'a'
//     (negative inter-arrival) *discovers* the reordering behaviour;
//  2. train the lightweight linear reordering predictor on real traces;
//  3. graft predicted reordering onto the iBoxNet output and check the
//     reordering-rate statistics against ground truth.
//
// Run with: go run ./examples/reordering
package main

import (
	"fmt"
	"log"

	"ibox"
	"ibox/internal/sax"
	"ibox/internal/stats"
)

func main() {
	log.SetFlags(0)

	fmt.Println("generating vegas traces on reordering-prone cellular paths...")
	corpus, err := ibox.GenerateCorpus(ibox.CellularReorder(), 8, "vegas", 10*ibox.Second, 31)
	if err != nil {
		log.Fatal(err)
	}
	train, test := corpus.Split(5)

	// iBoxNet replays of the test flows (in-order by construction).
	var gtTraces, netTraces []*ibox.Trace
	var models []*ibox.Model
	for _, gt := range test.Traces {
		model, err := ibox.Fit(gt, ibox.Full)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := model.Run("vegas", 10*ibox.Second, 11)
		if err != nil {
			log.Fatal(err)
		}
		gtTraces = append(gtTraces, gt)
		netTraces = append(netTraces, sim)
		models = append(models, model)
	}

	// 1. Discovery: SAX the inter-arrival times and diff the pattern sets.
	var ref []float64
	for _, tr := range gtTraces {
		ref = append(ref, tr.InterArrivalsBySeq()...)
	}
	symbolizer := sax.FitArrivalSymbolizer(ref, 6)
	freqs := func(trs []*ibox.Trace) map[string]float64 {
		var syms [][]byte
		for _, tr := range trs {
			syms = append(syms, symbolizer.Symbols(tr.InterArrivalsBySeq()))
		}
		return sax.MergeFrequencies(syms, 1)
	}
	gtFreq, netFreq := freqs(gtTraces), freqs(netTraces)
	diff := sax.Diff(gtFreq, netFreq, 1e-4)
	fmt.Printf("patterns in real traces missing from iBoxNet: %v\n", diff.OnlyA)
	fmt.Printf("  ('a' = negative inter-arrival = reordering; freq in GT: %.2f%%)\n", 100*gtFreq["a"])

	// 2. Train the linear reordering predictor on the training split.
	var samples []ibox.TrainingSample
	for _, tr := range train.Traces {
		s := ibox.TrainingSample{Trace: tr}
		if p, err := ibox.Estimate(tr); err == nil {
			s.CT = p.CrossTraffic
		}
		samples = append(samples, s)
	}
	predictor, err := ibox.TrainReorderLinear(samples, true, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Meld: graft predicted reordering onto the iBoxNet replays.
	var gtRates, netRates, augRates []float64
	for i, netTr := range netTraces {
		aug := ibox.AugmentReordering(netTr, predictor, models[i].Params.CrossTraffic, int64(i))
		gtRates = append(gtRates, gtTraces[i].ReorderingRateWindows(ibox.Second)...)
		netRates = append(netRates, netTr.ReorderingRateWindows(ibox.Second)...)
		augRates = append(augRates, aug.ReorderingRateWindows(ibox.Second)...)
	}
	fmt.Printf("mean 1s-window reordering rate: ground truth=%.4f  iBoxNet=%.4f  iBoxNet+linear=%.4f\n",
		stats.Mean(gtRates), stats.Mean(netRates), stats.Mean(augRates))
	ks := stats.KSTest(gtRates, augRates)
	fmt.Printf("KS(ground truth vs augmented) D=%.3f p=%.3f\n", ks.Statistic, ks.PValue)
}
