// Quickstart: the whole iBox loop in one page.
//
//  1. Run TCP Cubic over a synthetic cellular path (standing in for a real
//     Internet measurement) to obtain an input–output trace.
//  2. Learn an iBoxNet model from that single trace — bottleneck bandwidth,
//     propagation delay, buffer size, and the cross-traffic time series.
//  3. Ask the counterfactual question of §2: what would TCP Vegas have
//     seen on this very path at this very time?
//  4. Because the "real network" here is itself a simulator, we can also
//     run Vegas on the true path and check the prediction.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ibox"
)

func main() {
	log.SetFlags(0)

	// 1. A "measured" Cubic trace from a cellular path.
	corpus, err := ibox.GenerateCorpus(ibox.IndiaCellular(), 1, "cubic", 20*ibox.Second, 7)
	if err != nil {
		log.Fatal(err)
	}
	cubicTrace := corpus.Traces[0]
	fmt.Println("measured (cubic):", fmtMetrics(ibox.MetricsOf(cubicTrace)))

	// 2. Learn the network from the trace.
	model, err := ibox.Fit(cubicTrace, ibox.Full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("learnt model:    ", model.Params)

	// 3. The counterfactual: Vegas on the learnt model.
	vegasSim, err := model.Run("vegas", 20*ibox.Second, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("predicted (vegas):", fmtMetrics(ibox.MetricsOf(vegasSim)))

	// 4. Check against the ground truth the real world cannot give you.
	vegasGT, err := corpus.Instances[0].Run("vegas", 20*ibox.Second, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("actual (vegas):   ", fmtMetrics(ibox.MetricsOf(vegasGT)))
}

func fmtMetrics(m ibox.Metrics) string {
	return fmt.Sprintf("tput=%.2f Mbps  p95 delay=%.0f ms  loss=%.2f%%",
		m.ThroughputMbps, m.P95DelayMs, m.LossPct)
}
