// Serving — the counterfactual example as an API call.
//
// Where examples/counterfactual fits an iBoxNet model and replays Vegas
// over it in-process, this example publishes the learnt model through
// ibox-serve's HTTP API and asks the *service* the counterfactual
// question: measure Cubic on the "real" path, fit a model from that one
// trace, save the artifact into a model directory, start the serving
// subsystem on a loopback listener, then POST /v1/simulate to run Vegas
// over the learnt path — and check the served answer against both the
// ground-truth Vegas run and the equivalent offline model.Run call
// (serving is byte-faithful: same model + seed ⇒ same trace).
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"ibox"
	"ibox/internal/cc"
	"ibox/internal/netsim"
	"ibox/internal/serve"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// buildScenario runs one flow over the "real" path: 10 Mbps, 30 ms, 150 ms
// buffer, with a 6 Mbps cross-traffic burst during [20 s, 30 s) of a 60 s
// run (same path as examples/counterfactual).
func buildScenario(protocol string, seed int64) *trace.Trace {
	sched := sim.NewScheduler()
	cfg := netsim.Config{
		Rate:        1_250_000,
		BufferBytes: 187_500,
		PropDelay:   30 * sim.Millisecond,
		Seed:        seed,
	}
	path := netsim.New(sched, cfg)
	path.AddCrossTraffic(netsim.ConstantBitRate{
		Rate: 750_000, From: 20 * sim.Second, To: 30 * sim.Second,
	})
	sender, err := cc.NewSender(protocol, 1500)
	if err != nil {
		log.Fatal(err)
	}
	main := cc.NewFlow(sched, path.Port("main"), sender, cc.FlowConfig{
		Duration: 60 * sim.Second, AckDelay: cfg.PropDelay,
	})
	main.Start()
	sched.RunUntil(65 * sim.Second)
	return main.Trace()
}

func main() {
	log.SetFlags(0)

	fmt.Println("measuring cubic on the real path (cross-traffic burst at 20–30 s)...")
	cubicTrace := buildScenario("cubic", 5)
	model, err := ibox.Fit(cubicTrace, ibox.Full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("learnt:", model.Params)

	// Publish the artifact: a model directory is all ibox-serve needs.
	dir, err := os.MkdirTemp("", "ibox-serving-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	const id = "learnt-path.json"
	if err := model.Params.Save(filepath.Join(dir, id)); err != nil {
		log.Fatal(err)
	}

	// Start the serving subsystem in-process on a loopback listener —
	// exactly what `ibox-serve -models <dir>` runs.
	srv, err := serve.NewServer(serve.Config{ModelDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()
	fmt.Println("serving", id, "on", base)

	// The counterfactual, as an API call: how would Vegas have fared?
	const seed = 3
	reqBody, _ := json.Marshal(serve.SimulateRequest{
		Model: id, Protocol: "vegas", DurationS: 60, Seed: seed,
	})
	resp, err := http.Post(base+"/v1/simulate", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("simulate: HTTP %d: %s", resp.StatusCode, e.Error)
	}
	var served serve.SimulateResponse
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		log.Fatal(err)
	}

	// Verify the service against the offline call it fronts: same model,
	// protocol and seed must give the same trace, packet for packet. The
	// server stamps the result's PathID with the artifact id, so match
	// that before comparing.
	model.TrainTrace = id
	offline, err := model.Run("vegas", 60*ibox.Second, seed)
	if err != nil {
		log.Fatal(err)
	}
	servedJSON, _ := json.Marshal(served.Trace)
	offlineJSON, _ := json.Marshal(offline)
	if !bytes.Equal(servedJSON, offlineJSON) {
		log.Fatal("served trace differs from offline model.Run — serving must be byte-faithful")
	}
	fmt.Printf("served == offline model.Run: %d packets, byte-identical\n", len(served.Trace.Packets))

	// And against ground truth, like the counterfactual example does.
	vegasGT := buildScenario("vegas", 6)
	fmt.Printf("counterfactual vegas:  served %s\n                       truth  %s\n",
		fmtM(served.Metrics), fmtM(ibox.MetricsOf(vegasGT)))
}

func fmtM(m ibox.Metrics) string {
	return fmt.Sprintf("tput=%.2f Mbps p95=%.0f ms loss=%.2f%%", m.ThroughputMbps, m.P95DelayMs, m.LossPct)
}
