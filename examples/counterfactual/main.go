// Counterfactual analysis — the instance test of §2 / §3.1.2 / Fig 4.
//
// A known network path carries a Cubic flow while a 6 Mbps cross-traffic
// burst is active during one 10-second window. From that single Cubic
// trace (configuration and cross traffic treated as unknown), an iBoxNet
// model is learnt; then Vegas runs on the learnt model, and — because the
// "real network" is a simulator — also on the true path, so the
// counterfactual prediction can be verified second by second.
//
// The burst here is open-loop (like a video stream or bulk transfer behind
// a policer). iBoxNet replays estimated cross traffic non-adaptively, so
// open-loop workloads are where instance-level counterfactuals are
// faithful; for cross traffic that *adapts* to the sender under test, §6
// of the paper notes replay is a lower bound and leaves learning adaptive
// cross-traffic models as future work.
//
// The scenario construction (everything in buildScenario) is the part a
// real deployment would replace with packet captures; the learning and
// counterfactual replay go through the public ibox API.
//
// Run with: go run ./examples/counterfactual
package main

import (
	"fmt"
	"log"

	"ibox"
	"ibox/internal/cc"
	"ibox/internal/netsim"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// buildScenario runs one flow over the "real" path: 10 Mbps, 30 ms, 150 ms
// buffer, with a 6 Mbps cross-traffic burst during [20 s, 30 s) of a 60 s
// run.
func buildScenario(protocol string, seed int64) *trace.Trace {
	sched := sim.NewScheduler()
	cfg := netsim.Config{
		Rate:        1_250_000,
		BufferBytes: 187_500,
		PropDelay:   30 * sim.Millisecond,
		Seed:        seed,
	}
	path := netsim.New(sched, cfg)
	path.AddCrossTraffic(netsim.ConstantBitRate{
		Rate: 750_000, From: 20 * sim.Second, To: 30 * sim.Second,
	})
	sender, err := cc.NewSender(protocol, 1500)
	if err != nil {
		log.Fatal(err)
	}
	main := cc.NewFlow(sched, path.Port("main"), sender, cc.FlowConfig{
		Duration: 60 * sim.Second, AckDelay: cfg.PropDelay,
	})
	main.Start()
	sched.RunUntil(65 * sim.Second)
	return main.Trace()
}

func main() {
	log.SetFlags(0)

	fmt.Println("measuring cubic on the real path (cross-traffic burst at 20–30 s)...")
	cubicTrace := buildScenario("cubic", 5)

	model, err := ibox.Fit(cubicTrace, ibox.Full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("learnt:", model.Params)

	fmt.Println("counterfactual: vegas on the learnt model vs vegas on the true path")
	vegasSim, err := model.Run("vegas", 60*ibox.Second, 3)
	if err != nil {
		log.Fatal(err)
	}
	vegasGT := buildScenario("vegas", 6)

	// Second-by-second comparison: the learnt model must reproduce the
	// burst's signature — a throughput dip and delay spike at 20–30 s.
	step := 5 * ibox.Second
	simRate := vegasSim.RecvRateSeries(step)
	gtRate := vegasGT.RecvRateSeries(step)
	simDelay := vegasSim.DelaySeries(step)
	gtDelay := vegasGT.DelaySeries(step)
	fmt.Println("  t(s)   GT Mbps  sim Mbps   GT delay  sim delay")
	for i := 0; i < 12 && i < simRate.Len() && i < gtRate.Len(); i++ {
		marker := ""
		t := float64(i) * 5
		if t >= 20 && t < 30 {
			marker = "  ← cross-traffic burst"
		}
		fmt.Printf("  %4.0f   %7.2f  %8.2f   %6.0f ms  %6.0f ms%s\n",
			t, gtRate.Vals[i]/1e6, simRate.Vals[i]/1e6,
			gtDelay.Vals[i], simDelay.Vals[i], marker)
	}
	fmt.Printf("totals: GT %s | sim %s\n",
		fmtM(ibox.MetricsOf(vegasGT)), fmtM(ibox.MetricsOf(vegasSim)))
}

func fmtM(m ibox.Metrics) string {
	return fmt.Sprintf("tput=%.2f Mbps p95=%.0f ms loss=%.2f%%", m.ThroughputMbps, m.P95DelayMs, m.LossPct)
}
