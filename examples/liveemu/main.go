// Live emulation — Fig 1 made literal, end to end in one process:
//
//  1. "Measure" a Cubic flow on a synthetic cellular path and learn an
//     iBoxNet model from the trace;
//  2. start a live UDP emulator on loopback with the learnt parameters;
//  3. send real UDP probes through it and report the one-way delays and
//     losses a real application would experience.
//
// Run with: go run ./examples/liveemu
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"ibox"
	"ibox/internal/emu"
)

func main() {
	log.SetFlags(0)

	// 1. Learn a model from a "measured" trace.
	fmt.Println("learning an iBoxNet model from a cubic trace on a cellular path...")
	corpus, err := ibox.GenerateCorpus(ibox.IndiaCellular(), 1, "cubic", 12*ibox.Second, 17)
	if err != nil {
		log.Fatal(err)
	}
	model, err := ibox.Fit(corpus.Traces[0], ibox.Full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("learnt:", model.Params)

	// 2. A receiver that timestamps arrivals.
	recvConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	defer recvConn.Close()
	var mu sync.Mutex
	arrivals := map[byte]time.Time{}
	go func() {
		buf := make([]byte, 2048)
		for {
			n, _, err := recvConn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			if n > 0 {
				mu.Lock()
				arrivals[buf[0]] = time.Now()
				mu.Unlock()
			}
		}
	}()

	// 3. The emulator, forwarding to the receiver.
	e, err := emu.New(emu.Config{
		Listen:  "127.0.0.1:0",
		Forward: recvConn.LocalAddr().String(),
		Params:  model.Params,
		Variant: ibox.Full,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)
	fmt.Printf("live emulator on %s → %s\n", e.Addr(), recvConn.LocalAddr())

	// Probe: 100 × 1 kB packets at 800 kbps through the learnt network.
	src, err := net.DialUDP("udp", nil, e.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	const n = 100
	sendTimes := make([]time.Time, n)
	for i := 0; i < n; i++ {
		pkt := make([]byte, 1000)
		pkt[0] = byte(i)
		sendTimes[i] = time.Now()
		if _, err := src.Write(pkt); err != nil {
			log.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond) // let the queue drain

	var delays []float64
	lost := 0
	mu.Lock()
	for i := 0; i < n; i++ {
		at, ok := arrivals[byte(i)]
		if !ok {
			lost++
			continue
		}
		delays = append(delays, float64(at.Sub(sendTimes[i]).Microseconds())/1000)
	}
	mu.Unlock()
	sort.Float64s(delays)
	if len(delays) == 0 {
		log.Fatal("all probes lost")
	}
	fmt.Printf("probes: %d sent, %d delivered, %d lost\n", n, len(delays), lost)
	fmt.Printf("one-way delay over the learnt network: min=%.1f ms p50=%.1f ms p95=%.1f ms\n",
		delays[0], delays[len(delays)/2], delays[len(delays)*95/100])
	fmt.Printf("(learnt propagation delay was %.1f ms — the floor should sit just above it)\n",
		model.Params.PropDelay.Millis())
}
