// Live sessions — driving ibox-serve's stateful session control plane.
//
// Where examples/serving asks one-shot questions (POST /v1/simulate) and
// examples/liveemu pushes real UDP datagrams through a learnt path, this
// example runs a *live closed-loop emulation inside the server*: it fits
// an iBoxNet model, starts the serving subsystem on loopback, creates a
// session (POST /v1/sessions), attaches to its Server-Sent-Events
// telemetry stream, then — mid-flight, like `tc qdisc change` on a real
// testbed — halves the bottleneck bandwidth and injects a loss burst
// (POST /v1/sessions/{id}/path) and watches the congestion controller's
// cwnd react in the stream. Finally it pauses, resumes, and closes the
// session. See DESIGN.md "Session control plane".
//
// Run with: go run ./examples/livesession
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"ibox"
	"ibox/internal/serve"
	"ibox/internal/session"
)

func main() {
	log.SetFlags(0)

	// 1. Learn a path model and publish it as a serving artifact.
	fmt.Println("learning an iBoxNet model from a cubic trace on a cellular path...")
	corpus, err := ibox.GenerateCorpus(ibox.IndiaCellular(), 1, "cubic", 12*ibox.Second, 17)
	if err != nil {
		log.Fatal(err)
	}
	model, err := ibox.Fit(corpus.Traces[0], ibox.Full)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "ibox-livesession")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	const id = "cellular.json"
	if err := model.Params.Save(filepath.Join(dir, id)); err != nil {
		log.Fatal(err)
	}

	// 2. Start the serving subsystem in-process on a loopback listener.
	srv, err := serve.NewServer(serve.Config{ModelDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()
	fmt.Println("serving", id, "on", base)

	// 3. Create a session: cubic over the learnt path, fast-forwarded
	// 50× so the demo finishes quickly, summaries every 200 virtual ms.
	created := post(base+"/v1/sessions", serve.SessionRequest{
		Model: id, Protocol: "cubic", Seed: 7, Speed: 50, DurationS: 600,
		PacketEvery: -1, // summaries only; per-packet telemetry off
	})
	var sr serve.SessionResponse
	mustDecode(created, &sr)
	fmt.Printf("session %s created (state %s); streaming %s\n",
		sr.Session.ID, sr.Session.State, sr.EventsURL)

	// 4. Attach to the SSE stream and print the first few summaries.
	resp, err := http.Get(base + sr.EventsURL)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	summaries := 0
	for sc.Scan() && summaries < 8 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev session.Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			log.Fatal(err)
		}
		if ev.Type == session.EventSummary {
			summaries++
			fmt.Printf("  vt=%5.1fs cwnd=%3d srtt=%6.1fms tput=%5.2f Mbps lost=%d\n",
				ev.VT, ev.Summary.Cwnd, ev.Summary.SRTTMs,
				ev.Summary.ThroughputBps/1e6, ev.Summary.Lost)
		}
	}

	// 5. Mutate the live path: halve the bandwidth and add a 10-virtual-
	// second 20% loss burst — tc, but against the learnt model.
	fmt.Println("mutating path: bandwidth ×0.5 + 20% loss for 10 virtual seconds...")
	loss := 0.2
	post(base+"/v1/sessions/"+sr.Session.ID+"/path", serve.PathRequest{
		Mutation: session.Mutation{BandwidthScale: 0.5, LossRate: &loss, LossBurstS: 10},
	}).Body.Close()

	// 6. Keep reading: the controller backs off as the narrower, lossy
	// path bites (the response lags the in-flight tail by a second or two).
	for sc.Scan() && summaries < 30 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev session.Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			log.Fatal(err)
		}
		switch ev.Type {
		case session.EventMutate:
			fmt.Printf("  vt=%5.1fs MUTATED: scale=%.2f loss=%.2f for %.0fs\n",
				ev.VT, ev.Mutation.BandwidthScale, ev.Mutation.LossRate, ev.Mutation.LossBurstS)
		case session.EventSummary:
			summaries++
			fmt.Printf("  vt=%5.1fs cwnd=%3d srtt=%6.1fms tput=%5.2f Mbps lost=%d\n",
				ev.VT, ev.Summary.Cwnd, ev.Summary.SRTTMs,
				ev.Summary.ThroughputBps/1e6, ev.Summary.Lost)
		}
	}

	// 7. Lifecycle: pause, resume, close.
	post(base+"/v1/sessions/"+sr.Session.ID+"/pause", nil).Body.Close()
	fmt.Println("paused; virtual time is frozen while wall time passes")
	post(base+"/v1/sessions/"+sr.Session.ID+"/resume", nil).Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+sr.Session.ID, nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var closed serve.SessionResponse
	mustDecode(del, &closed)
	fmt.Printf("closed: ran %.1f virtual seconds, emitted %d events, %d mutations\n",
		closed.Session.VTSeconds, closed.Session.Events, closed.Session.Mutations)
}

// post sends v as JSON (or an empty body when nil) and fails on non-2xx.
func post(url string, v any) *http.Response {
	var body bytes.Buffer
	if v != nil {
		if err := json.NewEncoder(&body).Encode(v); err != nil {
			log.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, e.Error)
	}
	return resp
}

func mustDecode(resp *http.Response, v any) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
