// A/B testing inside the simulator — the ensemble test of §2 / §3.1.1.
//
// A fleet of Cubic "measurements" is collected over many cellular path
// instances. One iBoxNet model is learnt per trace; then both the control
// (Cubic) and a treatment protocol the models never saw (Vegas) run on
// every learnt model, recreating a flighting-based A/B test without
// touching the network. The distributions are verified against ground
// truth with two-sample KS tests — the methodology behind Fig 2.
//
// Run with: go run ./examples/abtest
package main

import (
	"fmt"
	"log"

	"ibox"
)

func main() {
	log.SetFlags(0)

	const n = 10
	dur := 12 * ibox.Second
	fmt.Printf("collecting %d cubic traces on synthetic India-Cellular paths...\n", n)
	corpus, err := ibox.GenerateCorpus(ibox.IndiaCellular(), n, "cubic", dur, 21)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running the ensemble A/B test (control=cubic, treatment=vegas)...")
	res, err := ibox.EnsembleTest(corpus, "vegas", ibox.Full, dur, 99)
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, ms []ibox.Metrics) {
		var tput, p95, loss float64
		for _, m := range ms {
			tput += m.ThroughputMbps
			p95 += m.P95DelayMs
			loss += m.LossPct
		}
		k := float64(len(ms))
		fmt.Printf("  %-14s tput=%.2f Mbps  p95=%.0f ms  loss=%.2f%%\n", name, tput/k, p95/k, loss/k)
	}
	fmt.Println("mean per-flow metrics:")
	report("cubic GT", res.GTControl)
	report("cubic iBoxNet", res.SimControl)
	report("vegas GT", res.GTTreatment)
	report("vegas iBoxNet", res.SimTreatment)

	fmt.Println("two-sample KS, simulated vs ground truth (p > 0.05 ⇒ no detectable mismatch):")
	for _, key := range []string{"treatment/tput", "treatment/p95", "treatment/loss"} {
		ks := res.KS[key]
		verdict := "match"
		if ks.PValue < 0.05 {
			verdict = "MISMATCH"
		}
		fmt.Printf("  %-16s D=%.3f p=%.3f  %s\n", key, ks.Statistic, ks.PValue, verdict)
	}

	// The A/B decision a protocol team would actually make:
	dTput := meanTput(res.SimTreatment) - meanTput(res.SimControl)
	dTputGT := meanTput(res.GTTreatment) - meanTput(res.GTControl)
	fmt.Printf("simulator's A/B verdict: vegas−cubic throughput = %+.2f Mbps (ground truth: %+.2f)\n",
		dTput, dTputGT)
}

func meanTput(ms []ibox.Metrics) float64 {
	s := 0.0
	for _, m := range ms {
		s += m.ThroughputMbps
	}
	return s / float64(len(ms))
}
